"""PathFinder negotiated-congestion routing.

Each signal net is routed as a tree over the device's routing graph with
A* searches (Manhattan lower bound); all nets are ripped up and re-routed
for several iterations while the present-usage penalty and per-node history
cost grow, until no routing node is shared — the classic PathFinder
algorithm (Ebeling/McMurchie), which is also what commercial P&R of the
paper's era implemented.

LUT input pins are routed as *equivalence classes*: a net aiming at a
G-LUT input may land on any free ``G1..G4`` pin; the winning pin is
recorded and bitgen permutes the truth table accordingly (``pin_map``).

Clock nets do not use the general graph: they ride the dedicated global
clock lines, activating one ``GCLKg -> Sx_CLK`` PIP per sink slice.

Two congestion engines implement the PathFinder state:

* ``engine="array"`` (the default) keeps per-node present usage and
  history in flat numpy arrays indexed by node id, with a live python
  list of each node's full cost (``base * (1 + pres_fac*occ) *
  (1 + history)``) maintained incrementally as occupancy changes — A*
  expansion reads one list element per neighbor instead of re-deriving
  kind/base/occupancy/history per visit.  The overuse sweep and history
  update at each iteration boundary are single vectorized passes, and
  per-node adjacency (successor, PIP ref, pin-gating flag) is memoized
  across searches;
* ``engine="scalar"`` is the reference implementation (dict congestion
  maps, per-visit cost closure), kept as the validation and benchmark
  baseline.

Cost arithmetic is ordered identically in both engines, and the RNG is
only consumed by the per-iteration net ordering shuffle, so **the same
seed produces the same routing on either engine** — asserted PIP-for-PIP
by ``tests/flow/test_vectorized.py``.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from ..devices import Device, get_device
from ..devices import wires as W
from ..devices.wires import NUM_WIRES, WIRE_DELAY_NS, WIRE_KIND, WireKind
from ..errors import RoutingError
from ..obs import current_metrics
from ..utils import make_rng
from .ncd import NcdDesign, PhysNet, SinkRef

#: Additive cost of entering any node (keeps hop counts down).
_HOP_COST = 0.05
#: Admissible per-tile lower bound for A* (cheapest way to cross a tile).
_ASTAR_PER_TILE = 0.20

#: Congestion-engine names accepted by :class:`Router`.
ROUTER_ENGINES = ("array", "scalar")

#: Wire kinds a search may only enter when they are the sink being aimed
#: for (never route *through* someone's input pin).
_GATED_KINDS = frozenset((WireKind.PIN_IN, WireKind.IO_OUT))


@dataclass
class RoutingStats:
    nets: int = 0
    routed: int = 0
    iterations: int = 0
    overused_final: int = 0
    total_pips: int = 0
    seconds: float = 0.0
    searches: int = 0
    nodes_popped: int = 0
    rip_ups: int = 0       # established trees torn down for re-route
    nets_reused: int = 0   # guided routing: nets adopted from the guide


@dataclass
class _NetTask:
    net: PhysNet
    source: int                                  # node id
    sinks: list[tuple[SinkRef, tuple[int, ...]]]  # (sink, candidate node ids)
    tree_nodes: list[int] = field(default_factory=list)
    node_prev: dict[int, tuple[int, tuple[int, int, int]]] = field(default_factory=dict)
    sink_paths: dict[int, list[int]] = field(default_factory=dict)  # sink idx -> node path
    tree_arr: np.ndarray | None = None   # array engine: tree_nodes as an index vector


class Router:
    """One routing run over a placed :class:`NcdDesign`."""

    def __init__(
        self,
        design: NcdDesign,
        *,
        seed: int | None = None,
        max_iterations: int = 30,
        pres_fac_first: float = 0.6,
        pres_fac_mult: float = 1.8,
        hist_fac: float = 0.4,
        guide: NcdDesign | None = None,
        engine: str = "array",
    ):
        if engine not in ROUTER_ENGINES:
            raise RoutingError(
                f"unknown router engine {engine!r} (choose from {ROUTER_ENGINES})"
            )
        if not design.placed():
            raise RoutingError("design is not fully placed")
        self.design = design
        self.device: Device = get_device(design.part)
        self.rng = make_rng(seed)
        self.max_iterations = max_iterations
        self.pres_fac_first = pres_fac_first
        self.pres_fac_mult = pres_fac_mult
        self.hist_fac = hist_fac
        self.guide = guide
        self.engine = engine
        self.stats = RoutingStats()
        self._base_cost = {
            kind: _HOP_COST + WIRE_DELAY_NS[kind] for kind in WireKind
        }
        # per-wire-index base cost (array engine node cost = _base_w[w])
        self._base_w = [_HOP_COST + WIRE_DELAY_NS[WIRE_KIND[w]] for w in range(NUM_WIRES)]
        self._pips_by_src = W.pips_by_src()
        self._locked_nodes: set[int] = set()
        self._adj: dict[int, tuple] = {}   # array engine: memoized adjacency

    # -- public -----------------------------------------------------------------

    def run(self) -> RoutingStats:
        t0 = time.perf_counter()
        clock_nets = [n for n in self.design.nets.values() if n.is_clock]
        signal_nets = [n for n in self.design.nets.values() if not n.is_clock]
        for net in clock_nets:
            self._route_clock(net)
        if self.guide is not None:
            signal_nets = [n for n in signal_nets if not self._adopt_from_guide(n)]
        tasks = [self._make_task(net) for net in signal_nets]
        self.stats.nets = len(clock_nets) + len(tasks) + self.stats.nets_reused
        self.stats.routed = len(clock_nets) + self.stats.nets_reused
        if tasks:
            self._pathfinder(tasks)
        self._commit_pin_maps()  # covers adopted (guide) nets as well
        self.stats.total_pips = sum(len(n.pips) for n in self.design.nets.values())
        self.stats.seconds = time.perf_counter() - t0
        m = current_metrics()
        m.count("flow.route.searches", self.stats.searches)
        m.count("flow.route.astar_pops", self.stats.nodes_popped)
        m.count("flow.route.rip_ups", self.stats.rip_ups)
        m.count("flow.route.iterations", self.stats.iterations)
        m.count("flow.route.nets_reused", self.stats.nets_reused)
        return self.stats

    # -- terminals ----------------------------------------------------------------

    def _slice_wire(self, comp_name: str, wire: str) -> int:
        comp = self.design.slices[comp_name]
        r, c, s = comp.site
        return self.device.node_id(r, c, W.wire_index(f"S{s}_{wire}"))

    def _iob_wire(self, comp_name: str, prefix: str) -> int:
        iob = self.design.iobs[comp_name]
        g = self.device.geometry
        r, c = g.iob_tile(iob.site)
        return self.device.node_id(r, c, W.wire_index(f"{prefix}{g.io_wire_index(iob.site)}"))

    def _source_node(self, net: PhysNet) -> int:
        src = net.source
        if src.pin == "PAD_IN":
            return self._iob_wire(src.comp, "IO_IN")
        if src.pin in ("X", "Y", "XQ", "YQ"):
            return self._slice_wire(src.comp, src.pin)
        raise RoutingError(f"net {net.name}: unroutable source pin {src.pin}")

    def _sink_candidates(self, net: PhysNet, sink: SinkRef) -> tuple[int, ...]:
        ref = sink.ref
        if ref.pin == "PAD_OUT":
            return (self._iob_wire(ref.comp, "IO_OUT"),)
        if ref.pin in ("F", "G"):
            return tuple(
                self._slice_wire(ref.comp, f"{ref.pin}{k}") for k in range(1, 5)
            )
        if ref.pin in ("BX", "BY", "CE", "SR"):
            return (self._slice_wire(ref.comp, ref.pin),)
        if ref.pin == "CLK":
            raise RoutingError(
                f"net {net.name}: clock pin sink on a non-clock net "
                f"({ref.comp}) — derived clocks are unsupported"
            )
        raise RoutingError(f"net {net.name}: unroutable sink pin {ref.pin}")

    def _make_task(self, net: PhysNet) -> _NetTask:
        source = self._source_node(net)
        sinks = [(s, self._sink_candidates(net, s)) for s in net.sinks]
        # farthest-first ordering helps tree quality
        sr, sc, _ = self.device.node_of(source)

        def dist(entry):
            r, c, _ = self.device.node_of(entry[1][0])
            return -(abs(r - sr) + abs(c - sc))

        sinks.sort(key=dist)
        return _NetTask(net, source, sinks)

    # -- guided routing ------------------------------------------------------------------

    def _same_placement(self, comp_name: str) -> bool:
        """Is this component placed identically in the design and guide?"""
        assert self.guide is not None
        if comp_name in self.design.slices:
            g = self.guide.slices.get(comp_name)
            return g is not None and g.site == self.design.slices[comp_name].site
        if comp_name in self.design.iobs:
            g = self.guide.iobs.get(comp_name)
            return g is not None and g.site == self.design.iobs[comp_name].site
        return False

    def _adopt_from_guide(self, net: PhysNet) -> bool:
        """Reuse the guide's routing for a net whose terminals are
        unchanged (the paper's guide-file / incremental-design support)."""
        assert self.guide is not None
        g = self.guide.nets.get(net.name)
        if g is None or not g.routed or g.is_clock or not g.pips:
            return False
        src, gsrc = net.source, g.source
        if (src.comp, src.pin) != (gsrc.comp, gsrc.pin):
            return False
        if len(net.sinks) != len(g.sinks):
            return False
        gsinks = {
            (s.ref.comp, s.ref.pin, s.ref.logical_index): s for s in g.sinks
        }
        matched = []
        for s in net.sinks:
            gs = gsinks.get((s.ref.comp, s.ref.pin, s.ref.logical_index))
            if gs is None or gs.phys_pin is None:
                return False
            matched.append((s, gs))
        comps = {src.comp} | {s.ref.comp for s in net.sinks}
        if not all(self._same_placement(c) for c in comps):
            return False
        # nodes this route occupies
        dev = self.device
        nodes = {self._source_node(net)}
        for r, c, p in g.pips:
            pip = W.PIP_TABLE[p]
            if not dev.pip_valid(r, c, pip):
                return False
            nodes.add(dev.node_id(r, c, pip.dst))
        if nodes & self._locked_nodes:
            return False  # clashes with an already-adopted route
        net.pips = list(g.pips)
        for s, gs in matched:
            s.phys_pin = gs.phys_pin
            s.delay_ns = gs.delay_ns
        net.routed = True
        self._locked_nodes |= nodes
        self.stats.nets_reused += 1
        return True

    # -- clock routing ------------------------------------------------------------------

    def _route_clock(self, net: PhysNet) -> None:
        gbuf = self.design.gclks.get(net.source.comp)
        if gbuf is None or gbuf.index is None:
            raise RoutingError(f"clock net {net.name}: no global buffer assigned")
        g = gbuf.index
        pips: list[tuple[int, int, int]] = []
        for sink in net.sinks:
            if sink.ref.pin != "CLK":
                raise RoutingError(
                    f"clock net {net.name} drives non-clock pin "
                    f"{sink.ref.comp}.{sink.ref.pin}; route it as a signal instead"
                )
            comp = self.design.slices[sink.ref.comp]
            r, c, s = comp.site
            pip = W.pip_by_wires(f"GCLK{g}", f"S{s}_CLK")
            pips.append((r, c, pip.index))
            sink.phys_pin = f"S{s}_CLK"
            sink.delay_ns = WIRE_DELAY_NS[WireKind.GCLK] + WIRE_DELAY_NS[WireKind.PIN_CLK]
        net.pips = pips
        net.routed = True

    # -- graph expansion ------------------------------------------------------------------

    def _neighbors(self, node: int):
        """Yield (next node, pip ref (r, c, index)) for all outgoing PIPs."""
        dev = self.device
        r, c, w = dev.node_of(node)
        kind = WIRE_KIND[w]
        fanout = self._pips_by_src.get(w, ())
        if kind is WireKind.LONG_H:
            for col in range(dev.cols):
                for odr, odc, pip in fanout:
                    if odr == 0 and odc == 0:
                        yield dev.node_id(r, col, pip.dst), (r, col, pip.index)
            return
        if kind is WireKind.LONG_V:
            for row in range(dev.rows):
                for odr, odc, pip in fanout:
                    if odr == 0 and odc == 0:
                        yield dev.node_id(row, c, pip.dst), (row, c, pip.index)
            return
        if kind is WireKind.GCLK:
            return  # clock lines are handled by _route_clock
        for odr, odc, pip in fanout:
            orow, ocol = r + odr, c + odc
            if 0 <= orow < dev.rows and 0 <= ocol < dev.cols:
                yield dev.node_id(orow, ocol, pip.dst), (orow, ocol, pip.index)

    def _adjacency(self, node: int) -> tuple:
        """Memoized successor tuple for the array engine's A* expansion.

        Each entry is ``(next node, pip ref, gated)`` where ``gated``
        pre-answers "is this a pin wire a search may only enter as its
        own sink?" — the per-visit kind lookup the scalar engine repeats.
        """
        entries = tuple(
            (nxt, pip_ref, WIRE_KIND[nxt % NUM_WIRES] in _GATED_KINDS)
            for nxt, pip_ref in self._neighbors(node)
        )
        self._adj[node] = entries
        return entries

    # -- PathFinder ------------------------------------------------------------------------

    def _sink_heuristic(self, candidates: tuple[int, ...]):
        """Admissible A* lower bound for one sink's candidate set.

        Distance is measured to the *nearest* candidate tile; with one
        tile (the common case — a slice's ``F1..F4`` pins share it) that
        reduces to the plain Manhattan bound.
        """
        node_of = self.device.node_of
        tiles = sorted({node_of(c)[:2] for c in candidates})
        if len(tiles) == 1:
            ((tr, tc),) = tiles

            def h(node: int) -> float:
                r, c, _ = node_of(node)
                return (abs(r - tr) + abs(c - tc)) * _ASTAR_PER_TILE

        else:

            def h(node: int) -> float:
                r, c, _ = node_of(node)
                return min(
                    abs(r - tr) + abs(c - tc) for tr, tc in tiles
                ) * _ASTAR_PER_TILE

        return h

    def _unroutable(self, over: list[int]) -> RoutingError:
        self.stats.overused_final = len(over)
        names = ", ".join(self.device.node_str(n) for n in over[:8])
        ellipsis = "..." if len(over) > 8 else ""
        return RoutingError(
            f"unroutable after {self.stats.iterations} iterations: "
            f"{len(over)} overused nodes ({names}{ellipsis})"
        )

    def _pathfinder(self, tasks: list[_NetTask]) -> None:
        if self.engine == "array":
            self._pathfinder_array(tasks)
        else:
            self._pathfinder_scalar(tasks)

    def _pathfinder_scalar(self, tasks: list[_NetTask]) -> None:
        present: dict[int, int] = {}
        history: dict[int, float] = {}
        pres_fac = self.pres_fac_first

        def node_cost(node: int) -> float:
            _, _, w = self.device.node_of(node)
            base = self._base_cost[WIRE_KIND[w]]
            occ = present.get(node, 0)
            penalty = 1.0 + pres_fac * occ
            return base * penalty * (1.0 + history.get(node, 0.0))

        order = list(range(len(tasks)))
        for iteration in range(1, self.max_iterations + 1):
            self.stats.iterations = iteration
            self.rng.shuffle(order)
            for ti in order:
                task = tasks[ti]
                if iteration > 1 and not self._is_congested(task, present):
                    continue
                self._rip_up(task, present)
                self._route_net(task, node_cost, present)
            over = [n for n, occ in present.items() if occ > 1]
            if not over:
                break
            for n in over:
                history[n] = history.get(n, 0.0) + self.hist_fac * (present[n] - 1)
            pres_fac *= self.pres_fac_mult

        over = [n for n, occ in present.items() if occ > 1]
        self.stats.overused_final = len(over)
        if over:
            raise self._unroutable(over)
        for task in tasks:
            self._commit(task)
            self.stats.routed += 1

    def _pathfinder_array(self, tasks: list[_NetTask]) -> None:
        """PathFinder over flat array congestion state (``engine="array"``).

        ``present``/``history`` are dense vectors over the node id space;
        ``cost`` is a python-list mirror of every node's *full* cost,
        patched in place wherever occupancy changes (and re-derived for
        all touched nodes when ``pres_fac`` steps at an iteration
        boundary), so the A* inner loop is a single list index per
        neighbor.  The overuse sweep and history bump are one vectorized
        pass each instead of a walk over the congestion dict.
        """
        num_nodes = self.device.num_nodes
        present = np.zeros(num_nodes, np.int64)
        history = np.zeros(num_nodes, np.float64)
        cost = np.tile(np.asarray(self._base_w), num_nodes // NUM_WIRES).tolist()
        pres_fac = self.pres_fac_first

        order = list(range(len(tasks)))
        for iteration in range(1, self.max_iterations + 1):
            self.stats.iterations = iteration
            self.rng.shuffle(order)
            for ti in order:
                task = tasks[ti]
                if iteration > 1 and not (
                    task.tree_arr is not None
                    and bool((present[task.tree_arr] > 1).any())
                ):
                    continue
                self._rip_up_array(task, cost, present, pres_fac, history)
                self._route_net_array(task, cost, present, pres_fac, history)
            over = np.flatnonzero(present > 1)
            if over.size == 0:
                break
            history[over] += self.hist_fac * (present[over] - 1)
            pres_fac *= self.pres_fac_mult
            # pres_fac changed: every occupied or blamed node's cached
            # cost is stale; re-derive them (sparse — only touched nodes)
            touched = np.flatnonzero((present > 0) | (history > 0.0))
            base_w = self._base_w
            for i, occ, hist in zip(
                touched.tolist(), present[touched].tolist(), history[touched].tolist()
            ):
                cost[i] = base_w[i % NUM_WIRES] * (1.0 + pres_fac * occ) * (1.0 + hist)

        over = np.flatnonzero(present > 1).tolist()
        self.stats.overused_final = len(over)
        if over:
            raise self._unroutable(over)
        for task in tasks:
            self._commit(task)
            self.stats.routed += 1

    def _is_congested(self, task: _NetTask, present: dict[int, int]) -> bool:
        return any(present.get(n, 0) > 1 for n in task.tree_nodes)

    def _rip_up(self, task: _NetTask, present: dict[int, int]) -> None:
        if task.tree_nodes:
            self.stats.rip_ups += 1
        for n in task.tree_nodes:
            occ = present.get(n, 0) - 1
            if occ > 0:
                present[n] = occ
            else:
                present.pop(n, None)
        task.tree_nodes = []
        task.node_prev = {}
        task.sink_paths = {}

    def _rip_up_array(
        self,
        task: _NetTask,
        cost: list[float],
        present: np.ndarray,
        pres_fac: float,
        history: np.ndarray,
    ) -> None:
        if task.tree_nodes:
            self.stats.rip_ups += 1
            base_w = self._base_w
            for n in task.tree_nodes:
                occ = int(present[n]) - 1
                present[n] = occ
                cost[n] = (
                    base_w[n % NUM_WIRES]
                    * (1.0 + pres_fac * occ)
                    * (1.0 + float(history[n]))
                )
        task.tree_nodes = []
        task.node_prev = {}
        task.sink_paths = {}
        task.tree_arr = None

    def _route_net(self, task: _NetTask, node_cost, present: dict[int, int]) -> None:
        dev = self.device
        tree: list[int] = [task.source]
        tree_set: set[int] = {task.source}
        prev: dict[int, tuple[int, tuple[int, int, int]] | None] = {task.source: None}

        used_pins: set[int] = set()
        for sink_idx, (sink, candidates) in enumerate(task.sinks):
            cand_set = set(candidates) - used_pins
            if not cand_set:
                raise RoutingError(
                    f"net {task.net.name}: no free pin candidate left for "
                    f"{sink.ref.comp}.{sink.ref.pin}"
                )
            h = self._sink_heuristic(candidates)
            dist: dict[int, float] = {}
            came: dict[int, tuple[int, tuple[int, int, int]]] = {}
            heap: list[tuple[float, float, int]] = []
            for n in tree:
                dist[n] = 0.0
                heapq.heappush(heap, (h(n), 0.0, n))
            self.stats.searches += 1
            found = None
            while heap:
                f, g, node = heapq.heappop(heap)
                self.stats.nodes_popped += 1
                if g > dist.get(node, float("inf")):
                    continue
                if node in cand_set:
                    found = node
                    break
                for nxt, pip_ref in self._neighbors(node):
                    if nxt in self._locked_nodes:
                        continue  # wire owned by a guide-adopted route
                    kind = WIRE_KIND[dev.node_of(nxt)[2]]
                    if kind in (WireKind.PIN_IN, WireKind.IO_OUT) and nxt not in cand_set:
                        continue  # never route *through* someone's input pin
                    ng = g + node_cost(nxt)
                    if ng < dist.get(nxt, float("inf")):
                        dist[nxt] = ng
                        came[nxt] = (node, pip_ref)
                        heapq.heappush(heap, (ng + h(nxt), ng, nxt))
            if found is None:
                raise RoutingError(
                    f"net {task.net.name}: no path to sink "
                    f"{sink.ref.comp}.{sink.ref.pin} "
                    f"(candidates {[dev.node_str(c) for c in candidates]})"
                )
            if sink.ref.pin in ("F", "G"):
                used_pins.add(found)
            # walk back, add path to tree
            path: list[int] = [found]
            node = found
            while node not in tree_set:
                pnode, pip_ref = came[node]
                prev[node] = (pnode, pip_ref)
                path.append(pnode)
                node = pnode
            path.reverse()
            for n in path:
                if n not in tree_set:
                    tree_set.add(n)
                    tree.append(n)
                    present[n] = present.get(n, 0) + 1
            task.sink_paths[sink_idx] = self._full_path(prev, found)
        # the source node also occupies its wire
        present[task.source] = present.get(task.source, 0) + 1
        task.tree_nodes = tree
        task.node_prev = {n: p for n, p in prev.items() if p is not None}

    def _route_net_array(
        self,
        task: _NetTask,
        cost: list[float],
        present: np.ndarray,
        pres_fac: float,
        history: np.ndarray,
    ) -> None:
        """Array-engine twin of :meth:`_route_net`: same search, but the
        per-neighbor cost is one ``cost`` list read and the expansion walks
        the memoized adjacency tuples instead of re-deriving them."""
        adj = self._adj
        adjacency = self._adjacency
        locked = self._locked_nodes
        base_w = self._base_w
        heappush, heappop = heapq.heappush, heapq.heappop
        inf = float("inf")
        tree: list[int] = [task.source]
        tree_set: set[int] = {task.source}
        prev: dict[int, tuple[int, tuple[int, int, int]] | None] = {task.source: None}

        used_pins: set[int] = set()
        pops = 0
        for sink_idx, (sink, candidates) in enumerate(task.sinks):
            cand_set = set(candidates) - used_pins
            if not cand_set:
                raise RoutingError(
                    f"net {task.net.name}: no free pin candidate left for "
                    f"{sink.ref.comp}.{sink.ref.pin}"
                )
            h = self._sink_heuristic(candidates)
            dist: dict[int, float] = {}
            dist_get = dist.get
            came: dict[int, tuple[int, tuple[int, int, int]]] = {}
            heap: list[tuple[float, float, int]] = []
            for n in tree:
                dist[n] = 0.0
                heappush(heap, (h(n), 0.0, n))
            self.stats.searches += 1
            found = None
            while heap:
                f, g, node = heappop(heap)
                pops += 1
                if g > dist_get(node, inf):
                    continue
                if node in cand_set:
                    found = node
                    break
                nbrs = adj.get(node)
                if nbrs is None:
                    nbrs = adjacency(node)
                for nxt, pip_ref, gated in nbrs:
                    if nxt in locked:
                        continue  # wire owned by a guide-adopted route
                    if gated and nxt not in cand_set:
                        continue  # never route *through* someone's input pin
                    ng = g + cost[nxt]
                    if ng < dist_get(nxt, inf):
                        dist[nxt] = ng
                        came[nxt] = (node, pip_ref)
                        heappush(heap, (ng + h(nxt), ng, nxt))
            if found is None:
                self.stats.nodes_popped += pops
                raise RoutingError(
                    f"net {task.net.name}: no path to sink "
                    f"{sink.ref.comp}.{sink.ref.pin} "
                    f"(candidates {[self.device.node_str(c) for c in candidates]})"
                )
            if sink.ref.pin in ("F", "G"):
                used_pins.add(found)
            # walk back, add path to tree
            path: list[int] = [found]
            node = found
            while node not in tree_set:
                pnode, pip_ref = came[node]
                prev[node] = (pnode, pip_ref)
                path.append(pnode)
                node = pnode
            path.reverse()
            for n in path:
                if n not in tree_set:
                    tree_set.add(n)
                    tree.append(n)
                    occ = int(present[n]) + 1
                    present[n] = occ
                    cost[n] = (
                        base_w[n % NUM_WIRES]
                        * (1.0 + pres_fac * occ)
                        * (1.0 + float(history[n]))
                    )
            task.sink_paths[sink_idx] = self._full_path(prev, found)
        self.stats.nodes_popped += pops
        # the source node also occupies its wire
        src = task.source
        occ = int(present[src]) + 1
        present[src] = occ
        cost[src] = (
            base_w[src % NUM_WIRES]
            * (1.0 + pres_fac * occ)
            * (1.0 + float(history[src]))
        )
        task.tree_nodes = tree
        task.tree_arr = np.asarray(tree, np.int64)
        task.node_prev = {n: p for n, p in prev.items() if p is not None}

    def _full_path(self, prev, node: int) -> list[int]:
        path = [node]
        while prev.get(node) is not None:
            node = prev[node][0]
            path.append(node)
        path.reverse()
        return path

    # -- commit --------------------------------------------------------------------------------

    def _commit(self, task: _NetTask) -> None:
        net = task.net
        net.pips = sorted({pip for _, pip in task.node_prev.values()})
        for sink_idx, (sink, _) in enumerate(task.sinks):
            path = task.sink_paths[sink_idx]
            end = path[-1]
            _, _, w = self.device.node_of(end)
            sink.phys_pin = W.WIRES[w]
            sink.delay_ns = sum(
                WIRE_DELAY_NS[WIRE_KIND[self.device.node_of(n)[2]]] for n in path[1:]
            )
        net.routed = True

    def _commit_pin_maps(self) -> None:
        """Record the physical pin chosen for every LUT logical input."""
        for net in self.design.nets.values():
            for sink in net.sinks:
                ref = sink.ref
                if ref.pin not in ("F", "G") or sink.phys_pin is None:
                    continue
                comp = self.design.slices[ref.comp]
                bel = comp.bels[ref.pin]
                if bel.pin_map is None:
                    bel.pin_map = [-1] * bel.lut_width
                # phys_pin looks like "S0_F3" -> physical index 2
                phys_idx = int(sink.phys_pin[-1]) - 1
                bel.pin_map[ref.logical_index] = phys_idx
        for comp in self.design.slices.values():
            for bel in comp.bels.values():
                if bel.pin_map is not None and -1 in bel.pin_map:
                    raise RoutingError(
                        f"{comp.name}.{bel.letter}: incomplete pin map {bel.pin_map}"
                    )


def route(
    design: NcdDesign, *, seed: int | None = None, engine: str = "array", **kwargs
) -> RoutingStats:
    """Route ``design`` in place; see :class:`Router`."""
    return Router(design, seed=seed, engine=engine, **kwargs).run()
