"""PathFinder negotiated-congestion routing.

Each signal net is routed as a tree over the device's routing graph with
A* searches (Manhattan lower bound); all nets are ripped up and re-routed
for several iterations while the present-usage penalty and per-node history
cost grow, until no routing node is shared — the classic PathFinder
algorithm (Ebeling/McMurchie), which is also what commercial P&R of the
paper's era implemented.

LUT input pins are routed as *equivalence classes*: a net aiming at a
G-LUT input may land on any free ``G1..G4`` pin; the winning pin is
recorded and bitgen permutes the truth table accordingly (``pin_map``).

Clock nets do not use the general graph: they ride the dedicated global
clock lines, activating one ``GCLKg -> Sx_CLK`` PIP per sink slice.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from ..devices import Device, get_device
from ..devices import wires as W
from ..devices.wires import WIRE_DELAY_NS, WIRE_KIND, WireKind
from ..errors import RoutingError
from ..utils import make_rng
from .ncd import NcdDesign, PhysNet, SinkRef

#: Additive cost of entering any node (keeps hop counts down).
_HOP_COST = 0.05
#: Admissible per-tile lower bound for A* (cheapest way to cross a tile).
_ASTAR_PER_TILE = 0.20


@dataclass
class RoutingStats:
    nets: int = 0
    routed: int = 0
    iterations: int = 0
    overused_final: int = 0
    total_pips: int = 0
    seconds: float = 0.0
    searches: int = 0
    nodes_popped: int = 0
    nets_reused: int = 0   # guided routing: nets adopted from the guide


@dataclass
class _NetTask:
    net: PhysNet
    source: int                                  # node id
    sinks: list[tuple[SinkRef, tuple[int, ...]]]  # (sink, candidate node ids)
    tree_nodes: list[int] = field(default_factory=list)
    node_prev: dict[int, tuple[int, tuple[int, int, int]]] = field(default_factory=dict)
    sink_paths: dict[int, list[int]] = field(default_factory=dict)  # sink idx -> node path


class Router:
    """One routing run over a placed :class:`NcdDesign`."""

    def __init__(
        self,
        design: NcdDesign,
        *,
        seed: int | None = None,
        max_iterations: int = 30,
        pres_fac_first: float = 0.6,
        pres_fac_mult: float = 1.8,
        hist_fac: float = 0.4,
        guide: NcdDesign | None = None,
    ):
        if not design.placed():
            raise RoutingError("design is not fully placed")
        self.design = design
        self.device: Device = get_device(design.part)
        self.rng = make_rng(seed)
        self.max_iterations = max_iterations
        self.pres_fac_first = pres_fac_first
        self.pres_fac_mult = pres_fac_mult
        self.hist_fac = hist_fac
        self.guide = guide
        self.stats = RoutingStats()
        self._base_cost = {
            kind: _HOP_COST + WIRE_DELAY_NS[kind] for kind in WireKind
        }
        self._pips_by_src = W.pips_by_src()
        self._locked_nodes: set[int] = set()

    # -- public -----------------------------------------------------------------

    def run(self) -> RoutingStats:
        t0 = time.perf_counter()
        clock_nets = [n for n in self.design.nets.values() if n.is_clock]
        signal_nets = [n for n in self.design.nets.values() if not n.is_clock]
        for net in clock_nets:
            self._route_clock(net)
        if self.guide is not None:
            signal_nets = [n for n in signal_nets if not self._adopt_from_guide(n)]
        tasks = [self._make_task(net) for net in signal_nets]
        self.stats.nets = len(clock_nets) + len(tasks) + self.stats.nets_reused
        self.stats.routed = len(clock_nets) + self.stats.nets_reused
        if tasks:
            self._pathfinder(tasks)
        self._commit_pin_maps()  # covers adopted (guide) nets as well
        self.stats.total_pips = sum(len(n.pips) for n in self.design.nets.values())
        self.stats.seconds = time.perf_counter() - t0
        return self.stats

    # -- terminals ----------------------------------------------------------------

    def _slice_wire(self, comp_name: str, wire: str) -> int:
        comp = self.design.slices[comp_name]
        r, c, s = comp.site
        return self.device.node_id(r, c, W.wire_index(f"S{s}_{wire}"))

    def _iob_wire(self, comp_name: str, prefix: str) -> int:
        iob = self.design.iobs[comp_name]
        g = self.device.geometry
        r, c = g.iob_tile(iob.site)
        return self.device.node_id(r, c, W.wire_index(f"{prefix}{g.io_wire_index(iob.site)}"))

    def _source_node(self, net: PhysNet) -> int:
        src = net.source
        if src.pin == "PAD_IN":
            return self._iob_wire(src.comp, "IO_IN")
        if src.pin in ("X", "Y", "XQ", "YQ"):
            return self._slice_wire(src.comp, src.pin)
        raise RoutingError(f"net {net.name}: unroutable source pin {src.pin}")

    def _sink_candidates(self, net: PhysNet, sink: SinkRef) -> tuple[int, ...]:
        ref = sink.ref
        if ref.pin == "PAD_OUT":
            return (self._iob_wire(ref.comp, "IO_OUT"),)
        if ref.pin in ("F", "G"):
            return tuple(
                self._slice_wire(ref.comp, f"{ref.pin}{k}") for k in range(1, 5)
            )
        if ref.pin in ("BX", "BY", "CE", "SR"):
            return (self._slice_wire(ref.comp, ref.pin),)
        if ref.pin == "CLK":
            raise RoutingError(
                f"net {net.name}: clock pin sink on a non-clock net "
                f"({ref.comp}) — derived clocks are unsupported"
            )
        raise RoutingError(f"net {net.name}: unroutable sink pin {ref.pin}")

    def _make_task(self, net: PhysNet) -> _NetTask:
        source = self._source_node(net)
        sinks = [(s, self._sink_candidates(net, s)) for s in net.sinks]
        # farthest-first ordering helps tree quality
        sr, sc, _ = self.device.node_of(source)

        def dist(entry):
            r, c, _ = self.device.node_of(entry[1][0])
            return -(abs(r - sr) + abs(c - sc))

        sinks.sort(key=dist)
        return _NetTask(net, source, sinks)

    # -- guided routing ------------------------------------------------------------------

    def _same_placement(self, comp_name: str) -> bool:
        """Is this component placed identically in the design and guide?"""
        assert self.guide is not None
        if comp_name in self.design.slices:
            g = self.guide.slices.get(comp_name)
            return g is not None and g.site == self.design.slices[comp_name].site
        if comp_name in self.design.iobs:
            g = self.guide.iobs.get(comp_name)
            return g is not None and g.site == self.design.iobs[comp_name].site
        return False

    def _adopt_from_guide(self, net: PhysNet) -> bool:
        """Reuse the guide's routing for a net whose terminals are
        unchanged (the paper's guide-file / incremental-design support)."""
        assert self.guide is not None
        g = self.guide.nets.get(net.name)
        if g is None or not g.routed or g.is_clock or not g.pips:
            return False
        src, gsrc = net.source, g.source
        if (src.comp, src.pin) != (gsrc.comp, gsrc.pin):
            return False
        if len(net.sinks) != len(g.sinks):
            return False
        gsinks = {
            (s.ref.comp, s.ref.pin, s.ref.logical_index): s for s in g.sinks
        }
        matched = []
        for s in net.sinks:
            gs = gsinks.get((s.ref.comp, s.ref.pin, s.ref.logical_index))
            if gs is None or gs.phys_pin is None:
                return False
            matched.append((s, gs))
        comps = {src.comp} | {s.ref.comp for s in net.sinks}
        if not all(self._same_placement(c) for c in comps):
            return False
        # nodes this route occupies
        dev = self.device
        nodes = {self._source_node(net)}
        for r, c, p in g.pips:
            pip = W.PIP_TABLE[p]
            if not dev.pip_valid(r, c, pip):
                return False
            nodes.add(dev.node_id(r, c, pip.dst))
        if nodes & self._locked_nodes:
            return False  # clashes with an already-adopted route
        net.pips = list(g.pips)
        for s, gs in matched:
            s.phys_pin = gs.phys_pin
            s.delay_ns = gs.delay_ns
        net.routed = True
        self._locked_nodes |= nodes
        self.stats.nets_reused += 1
        return True

    # -- clock routing ------------------------------------------------------------------

    def _route_clock(self, net: PhysNet) -> None:
        gbuf = self.design.gclks.get(net.source.comp)
        if gbuf is None or gbuf.index is None:
            raise RoutingError(f"clock net {net.name}: no global buffer assigned")
        g = gbuf.index
        pips: list[tuple[int, int, int]] = []
        for sink in net.sinks:
            if sink.ref.pin != "CLK":
                raise RoutingError(
                    f"clock net {net.name} drives non-clock pin "
                    f"{sink.ref.comp}.{sink.ref.pin}; route it as a signal instead"
                )
            comp = self.design.slices[sink.ref.comp]
            r, c, s = comp.site
            pip = W.pip_by_wires(f"GCLK{g}", f"S{s}_CLK")
            pips.append((r, c, pip.index))
            sink.phys_pin = f"S{s}_CLK"
            sink.delay_ns = WIRE_DELAY_NS[WireKind.GCLK] + WIRE_DELAY_NS[WireKind.PIN_CLK]
        net.pips = pips
        net.routed = True

    # -- graph expansion ------------------------------------------------------------------

    def _neighbors(self, node: int):
        """Yield (next node, pip ref (r, c, index)) for all outgoing PIPs."""
        dev = self.device
        r, c, w = dev.node_of(node)
        kind = WIRE_KIND[w]
        fanout = self._pips_by_src.get(w, ())
        if kind is WireKind.LONG_H:
            for col in range(dev.cols):
                for odr, odc, pip in fanout:
                    if odr == 0 and odc == 0:
                        yield dev.node_id(r, col, pip.dst), (r, col, pip.index)
            return
        if kind is WireKind.LONG_V:
            for row in range(dev.rows):
                for odr, odc, pip in fanout:
                    if odr == 0 and odc == 0:
                        yield dev.node_id(row, c, pip.dst), (row, c, pip.index)
            return
        if kind is WireKind.GCLK:
            return  # clock lines are handled by _route_clock
        for odr, odc, pip in fanout:
            orow, ocol = r + odr, c + odc
            if 0 <= orow < dev.rows and 0 <= ocol < dev.cols:
                yield dev.node_id(orow, ocol, pip.dst), (orow, ocol, pip.index)

    # -- PathFinder ------------------------------------------------------------------------

    def _pathfinder(self, tasks: list[_NetTask]) -> None:
        present: dict[int, int] = {}
        history: dict[int, float] = {}
        pres_fac = self.pres_fac_first

        def node_cost(node: int) -> float:
            _, _, w = self.device.node_of(node)
            base = self._base_cost[WIRE_KIND[w]]
            occ = present.get(node, 0)
            penalty = 1.0 + pres_fac * occ
            return base * penalty * (1.0 + history.get(node, 0.0))

        order = list(range(len(tasks)))
        for iteration in range(1, self.max_iterations + 1):
            self.stats.iterations = iteration
            self.rng.shuffle(order)
            for ti in order:
                task = tasks[ti]
                if iteration > 1 and not self._is_congested(task, present):
                    continue
                self._rip_up(task, present)
                self._route_net(task, node_cost, present)
            over = [n for n, occ in present.items() if occ > 1]
            if not over:
                break
            for n in over:
                history[n] = history.get(n, 0.0) + self.hist_fac * (present[n] - 1)
            pres_fac *= self.pres_fac_mult

        over = [n for n, occ in present.items() if occ > 1]
        self.stats.overused_final = len(over)
        if over:
            names = ", ".join(self.device.node_str(n) for n in over[:8])
            raise RoutingError(
                f"unroutable after {self.stats.iterations} iterations: "
                f"{len(over)} overused nodes ({names}...)"
            )
        for task in tasks:
            self._commit(task)
            self.stats.routed += 1

    def _is_congested(self, task: _NetTask, present: dict[int, int]) -> bool:
        return any(present.get(n, 0) > 1 for n in task.tree_nodes)

    def _rip_up(self, task: _NetTask, present: dict[int, int]) -> None:
        for n in task.tree_nodes:
            occ = present.get(n, 0) - 1
            if occ > 0:
                present[n] = occ
            else:
                present.pop(n, None)
        task.tree_nodes = []
        task.node_prev = {}
        task.sink_paths = {}

    def _route_net(self, task: _NetTask, node_cost, present: dict[int, int]) -> None:
        dev = self.device
        tree: list[int] = [task.source]
        tree_set: set[int] = {task.source}
        prev: dict[int, tuple[int, tuple[int, int, int]] | None] = {task.source: None}

        used_pins: set[int] = set()
        for sink_idx, (sink, candidates) in enumerate(task.sinks):
            cand_set = set(candidates) - used_pins
            if not cand_set:
                raise RoutingError(
                    f"net {task.net.name}: no free pin candidate left for "
                    f"{sink.ref.comp}.{sink.ref.pin}"
                )
            # A* target: all candidates share a tile
            tr, tc, _ = dev.node_of(candidates[0])

            def h(node: int) -> float:
                r, c, _ = dev.node_of(node)
                return (abs(r - tr) + abs(c - tc)) * _ASTAR_PER_TILE

            dist: dict[int, float] = {}
            came: dict[int, tuple[int, tuple[int, int, int]]] = {}
            heap: list[tuple[float, float, int]] = []
            for n in tree:
                dist[n] = 0.0
                heapq.heappush(heap, (h(n), 0.0, n))
            self.stats.searches += 1
            found = None
            while heap:
                f, g, node = heapq.heappop(heap)
                self.stats.nodes_popped += 1
                if g > dist.get(node, float("inf")):
                    continue
                if node in cand_set:
                    found = node
                    break
                for nxt, pip_ref in self._neighbors(node):
                    if nxt in self._locked_nodes:
                        continue  # wire owned by a guide-adopted route
                    kind = WIRE_KIND[dev.node_of(nxt)[2]]
                    if kind in (WireKind.PIN_IN, WireKind.IO_OUT) and nxt not in cand_set:
                        continue  # never route *through* someone's input pin
                    ng = g + node_cost(nxt)
                    if ng < dist.get(nxt, float("inf")):
                        dist[nxt] = ng
                        came[nxt] = (node, pip_ref)
                        heapq.heappush(heap, (ng + h(nxt), ng, nxt))
            if found is None:
                raise RoutingError(
                    f"net {task.net.name}: no path to sink "
                    f"{sink.ref.comp}.{sink.ref.pin} "
                    f"(candidates {[dev.node_str(c) for c in candidates]})"
                )
            if sink.ref.pin in ("F", "G"):
                used_pins.add(found)
            # walk back, add path to tree
            path: list[int] = [found]
            node = found
            while node not in tree_set:
                pnode, pip_ref = came[node]
                prev[node] = (pnode, pip_ref)
                path.append(pnode)
                node = pnode
            path.reverse()
            for n in path:
                if n not in tree_set:
                    tree_set.add(n)
                    tree.append(n)
                    present[n] = present.get(n, 0) + 1
            task.sink_paths[sink_idx] = self._full_path(prev, found)
        # the source node also occupies its wire
        present[task.source] = present.get(task.source, 0) + 1
        task.tree_nodes = tree
        task.node_prev = {n: p for n, p in prev.items() if p is not None}

    def _full_path(self, prev, node: int) -> list[int]:
        path = [node]
        while prev.get(node) is not None:
            node = prev[node][0]
            path.append(node)
        path.reverse()
        return path

    # -- commit --------------------------------------------------------------------------------

    def _commit(self, task: _NetTask) -> None:
        net = task.net
        net.pips = sorted({pip for _, pip in task.node_prev.values()})
        for sink_idx, (sink, _) in enumerate(task.sinks):
            path = task.sink_paths[sink_idx]
            end = path[-1]
            _, _, w = self.device.node_of(end)
            sink.phys_pin = W.WIRES[w]
            sink.delay_ns = sum(
                WIRE_DELAY_NS[WIRE_KIND[self.device.node_of(n)[2]]] for n in path[1:]
            )
        net.routed = True

    def _commit_pin_maps(self) -> None:
        """Record the physical pin chosen for every LUT logical input."""
        for net in self.design.nets.values():
            for sink in net.sinks:
                ref = sink.ref
                if ref.pin not in ("F", "G") or sink.phys_pin is None:
                    continue
                comp = self.design.slices[ref.comp]
                bel = comp.bels[ref.pin]
                if bel.pin_map is None:
                    bel.pin_map = [-1] * bel.lut_width
                # phys_pin looks like "S0_F3" -> physical index 2
                phys_idx = int(sink.phys_pin[-1]) - 1
                bel.pin_map[ref.logical_index] = phys_idx
        for comp in self.design.slices.values():
            for bel in comp.bels.values():
                if bel.pin_map is not None and -1 in bel.pin_map:
                    raise RoutingError(
                        f"{comp.name}.{bel.letter}: incomplete pin map {bel.pin_map}"
                    )


def route(design: NcdDesign, *, seed: int | None = None, **kwargs) -> RoutingStats:
    """Route ``design`` in place; see :class:`Router`."""
    return Router(design, seed=seed, **kwargs).run()
