"""Flow driver: the "Xilinx Foundation tools" entry point.

``run_flow`` takes a logical netlist through mapping, packing, placement
and routing, returning the finished :class:`NcdDesign` plus per-phase
runtimes and statistics — the numbers the paper's P&R-time argument is
about.  The input netlist is deep-copied, so callers can re-run the flow
with different constraints (the phase-2 module re-implementation of JPG's
methodology).
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

from ..netlist.logical import Netlist
from ..obs import current_metrics
from .floorplan import Constraints
from .ncd import NcdDesign
from .pack import PackStats, pack
from .place import PlacementStats, place
from .route import RoutingStats, route
from .techmap import TechmapStats, techmap
from .timing import TimingReport, analyze


@dataclass
class FlowResult:
    """Everything one flow run produced."""

    design: NcdDesign
    techmap_stats: TechmapStats
    pack_stats: PackStats
    place_stats: PlacementStats
    route_stats: RoutingStats
    timing: TimingReport
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def summary(self) -> str:
        d, t = self.design.stats(), self.phase_seconds
        return (
            f"{self.design.name} on {self.design.part}: "
            f"{d['slices']} slices, {d['nets']} nets, {d['pips']} PIPs; "
            f"fmax {self.timing.fmax_mhz:.1f} MHz; "
            f"map {t['techmap'] + t['pack']:.2f}s, place {t['place']:.2f}s, "
            f"route {t['route']:.2f}s, sta {t['timing']:.2f}s"
        )


def run_flow(
    netlist: Netlist,
    part: str,
    constraints: Constraints | None = None,
    *,
    guide: NcdDesign | None = None,
    seed: int | None = 0,
    effort: float = 1.0,
    engine: str = "array",
    router_opts: dict | None = None,
) -> FlowResult:
    """Run map -> pack -> place -> route -> STA on a copy of ``netlist``.

    ``engine`` selects the placer/router cost engine (``"array"`` or
    ``"scalar"``); both produce identical results for a given seed.
    """
    netlist = copy.deepcopy(netlist)
    times: dict[str, float] = {}
    metrics = current_metrics()

    t = time.perf_counter()
    with metrics.stage("flow.techmap"):
        tm_stats = techmap(netlist)
    times["techmap"] = time.perf_counter() - t

    t = time.perf_counter()
    with metrics.stage("flow.pack"):
        design, pk_stats = pack(netlist, part)
    times["pack"] = time.perf_counter() - t

    t = time.perf_counter()
    with metrics.stage("flow.place"):
        pl_stats = place(
            design, constraints, guide=guide, seed=seed, effort=effort, engine=engine
        )
    times["place"] = time.perf_counter() - t

    t = time.perf_counter()
    opts = dict(router_opts or {})
    opts.setdefault("guide", guide)
    opts.setdefault("engine", engine)
    with metrics.stage("flow.route"):
        rt_stats = route(design, seed=seed, **opts)
    times["route"] = time.perf_counter() - t

    t = time.perf_counter()
    with metrics.stage("flow.timing"):
        timing = analyze(design)
    times["timing"] = time.perf_counter() - t
    return FlowResult(design, tm_stats, pk_stats, pl_stats, rt_stats, timing, times)
