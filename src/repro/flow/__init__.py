"""CAD flow substrate (the "Foundation tools" equivalent): techmap, pack,
place, route, timing, the NCD database, and the one-call flow driver."""

from .driver import FlowResult, run_flow
from .floorplan import AreaGroup, Constraints, RegionRect, full_device_region
from .ncd import Bel, GclkComp, IobComp, NcdDesign, PhysNet, PinRef, SinkRef, SliceComp
from .pack import PackStats, module_prefix, pack
from .place import PLACER_ENGINES, PlacementStats, Placer, place
from .route import ROUTER_ENGINES, Router, RoutingStats, route
from .techmap import TechmapStats, techmap
from .timing import TimingReport, analyze

__all__ = [
    "AreaGroup", "Bel", "Constraints", "FlowResult", "GclkComp", "IobComp",
    "NcdDesign", "PLACER_ENGINES", "PackStats", "PhysNet", "PinRef",
    "PlacementStats", "Placer", "ROUTER_ENGINES", "RegionRect", "Router",
    "RoutingStats", "SinkRef", "SliceComp",
    "TechmapStats", "TimingReport", "analyze", "full_device_region",
    "module_prefix", "pack", "place", "route", "run_flow", "techmap",
]
