"""Simulated-annealing placement.

Standard VPR-style annealer over slice and IOB components: the cost is the
half-perimeter wirelength (HPWL) of all signal nets, moves are single-
component relocations or pairwise swaps, and the cooling schedule adapts
the starting temperature to the observed move-delta distribution.

Constraints honoured (the paper's phase-1/phase-2 floorplanning):

* ``LOC`` pins a component to a site — it never moves;
* an ``AREA_GROUP`` ``RANGE`` confines every matching component to its
  rectangle (module-region placement);
* ``PROHIBIT`` removes tiles from the site pool;
* a *guide* (a previously-placed design, paper §3.2 "guided floorplanning")
  seeds matching components at their old sites and locks them.

Runtime scales with the number of movable components — this is what the
PNR experiment measures when it compares module-sized against full-chip
place-and-route.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..devices import Device, IobSite, get_device, parse_slice_site
from ..devices.geometry import NUM_GCLK
from ..errors import PlacementError
from ..utils import make_rng
from .floorplan import Constraints, RegionRect, full_device_region
from .ncd import NcdDesign, SliceComp

SliceSite = tuple[int, int, int]


@dataclass
class PlacementStats:
    initial_cost: float = 0.0
    final_cost: float = 0.0
    moves_attempted: int = 0
    moves_accepted: int = 0
    temperatures: int = 0
    seconds: float = 0.0
    movable: int = 0
    fixed: int = 0


@dataclass
class _CompState:
    name: str
    is_iob: bool
    region: RegionRect | None = None      # slices only
    fixed: bool = False
    site: object = None                   # SliceSite or IobSite
    nets: list[str] = field(default_factory=list)


class Placer:
    """One placement run over an :class:`NcdDesign`."""

    def __init__(
        self,
        design: NcdDesign,
        constraints: Constraints | None = None,
        *,
        guide: NcdDesign | None = None,
        seed: int | None = None,
        effort: float = 1.0,
    ):
        self.design = design
        self.device: Device = get_device(design.part)
        self.constraints = constraints or Constraints()
        self.constraints.validate(self.device)
        self.guide = guide
        self.rng = make_rng(seed)
        self.effort = max(0.1, effort)
        self.stats = PlacementStats()

    # -- public ------------------------------------------------------------------

    def run(self) -> PlacementStats:
        t0 = time.perf_counter()
        self._assign_gclks()
        self._build_state()
        self._initial_placement()
        self._anneal()
        self._commit()
        self.stats.seconds = time.perf_counter() - t0
        return self.stats

    # -- setup ---------------------------------------------------------------------

    def _assign_gclks(self) -> None:
        gclks = list(self.design.gclks.values())
        if len(gclks) > NUM_GCLK:
            raise PlacementError(
                f"{len(gclks)} clock ports exceed the {NUM_GCLK} global clock buffers"
            )
        taken = {g.index for g in gclks if g.index is not None}
        # guided flows keep each clock on the buffer the base design used,
        # preserving the module interface across re-implementation
        if self.guide is not None:
            for g in gclks:
                if g.index is not None:
                    continue
                ref = self.guide.gclks.get(g.name)
                if ref is not None and ref.index is not None and ref.index not in taken:
                    g.index = ref.index
                    taken.add(ref.index)
        free = iter(i for i in range(NUM_GCLK) if i not in taken)
        for g in gclks:
            if g.index is None:
                g.index = next(free)

    def _region_of(self, comp: SliceComp) -> RegionRect:
        group = self.constraints.group_of(comp.name)
        if group is None or group.range is None:
            return full_device_region(self.device)
        return group.range

    def _build_state(self) -> None:
        self.comps: dict[str, _CompState] = {}
        for comp in self.design.slices.values():
            self.comps[comp.name] = _CompState(
                comp.name, is_iob=False, region=self._region_of(comp)
            )
        for iob in self.design.iobs.values():
            self.comps[iob.name] = _CompState(iob.name, is_iob=True)
        # net incidence (signal nets only; clock nets ride the global network)
        self.net_terms: dict[str, list[str]] = {}
        for net in self.design.nets.values():
            if net.is_clock:
                continue
            terms = [net.source.comp] + [s.ref.comp for s in net.sinks]
            terms = [t for t in terms if t in self.comps]
            if len(set(terms)) < 2:
                continue
            self.net_terms[net.name] = terms
            for t in set(terms):
                self.comps[t].nets.append(net.name)

    def _initial_placement(self) -> None:
        dev = self.device
        prohibited = self.constraints.prohibited
        self.slice_occ: dict[SliceSite, str] = {}
        self.iob_occ: dict[IobSite, str] = {}

        # 1. explicit LOCs and guide seeds
        for state in self.comps.values():
            loc = self.constraints.loc_of(state.name)
            if loc is not None and not state.is_iob:
                site = parse_slice_site(loc)
                self._claim(state, site, fixed=True)
        if self.guide is not None:
            self._apply_guide()

        # 2. everything else, randomly within its region
        all_iob_sites = list(dev.geometry.iob_sites)
        for state in self.comps.values():
            if state.site is not None:
                continue
            if state.is_iob:
                free = [s for s in all_iob_sites if s not in self.iob_occ]
                if not free:
                    raise PlacementError("out of IOB sites")
                self._claim(state, free[int(self.rng.integers(len(free)))])
            else:
                sites = [
                    (r, c, s)
                    for r, c in state.region.clip_to(dev).sites()
                    if (r, c) not in prohibited
                    for s in (0, 1)
                    if (r, c, s) not in self.slice_occ
                ]
                if not sites:
                    raise PlacementError(
                        f"{state.name}: no free slice site in region {state.region} "
                        f"({len(self.design.slices)} slices to place)"
                    )
                self._claim(state, sites[int(self.rng.integers(len(sites)))])

    def _apply_guide(self) -> None:
        assert self.guide is not None
        for name, comp in self.guide.slices.items():
            state = self.comps.get(name)
            if state is None or state.is_iob or comp.site is None or state.site is not None:
                continue
            site = tuple(comp.site)
            if site not in self.slice_occ and state.region.contains(site[0], site[1]):
                self._claim(state, site, fixed=True)
        for name, iob in self.guide.iobs.items():
            state = self.comps.get(name)
            if state is None or not state.is_iob or iob.site is None or state.site is not None:
                continue
            if iob.site not in self.iob_occ:
                self._claim(state, iob.site, fixed=True)

    def _claim(self, state: _CompState, site, fixed: bool = False) -> None:
        if state.is_iob:
            if site in self.iob_occ:
                raise PlacementError(
                    f"IOB site {site.name} wanted by {state.name} and {self.iob_occ[site]}"
                )
            self.iob_occ[site] = state.name
        else:
            if site in self.slice_occ:
                raise PlacementError(
                    f"site {site} wanted by {state.name} and {self.slice_occ[site]}"
                )
            self.slice_occ[site] = state.name
        state.site = site
        state.fixed = state.fixed or fixed

    # -- cost -------------------------------------------------------------------------

    def _tile_of(self, state: _CompState) -> tuple[int, int]:
        if state.is_iob:
            return self.device.geometry.iob_tile(state.site)
        r, c, _ = state.site
        return r, c

    def _net_cost(self, net_name: str) -> float:
        rows, cols = [], []
        for t in self.net_terms[net_name]:
            r, c = self._tile_of(self.comps[t])
            rows.append(r)
            cols.append(c)
        return (max(rows) - min(rows)) + (max(cols) - min(cols))

    def _total_cost(self) -> float:
        self.net_cost = {n: self._net_cost(n) for n in self.net_terms}
        return sum(self.net_cost.values())

    # -- annealing ----------------------------------------------------------------------

    def _anneal(self) -> None:
        movable = [s for s in self.comps.values() if not s.fixed]
        self.stats.movable = len(movable)
        self.stats.fixed = len(self.comps) - len(movable)
        cost = self._total_cost()
        self.stats.initial_cost = cost
        if not movable or not self.net_terms:
            self.stats.final_cost = cost
            return

        # temperature from the spread of a random-move sample
        deltas = []
        for _ in range(min(50, 10 * len(movable))):
            d = self._try_move(movable, temperature=math.inf, dry=True)
            if d is not None:
                deltas.append(abs(d))
        temp = 2.0 * (float(np.std(deltas)) + 1.0) if deltas else 1.0

        inner = max(20, int(self.effort * 12 * len(movable)))
        stall = 0
        while stall < 4 and temp > 1e-3:
            accepted = 0
            for _ in range(inner):
                d = self._try_move(movable, temp)
                self.stats.moves_attempted += 1
                if d is not None:
                    accepted += 1
                    cost += d
                    self.stats.moves_accepted += 1
            self.stats.temperatures += 1
            ratio = accepted / inner
            stall = stall + 1 if ratio < 0.02 else 0
            # VPR-style adaptive cooling: cool slowly near 44% acceptance
            if ratio > 0.96:
                temp *= 0.5
            elif ratio > 0.4:
                temp *= 0.9
            elif ratio > 0.1:
                temp *= 0.95
            else:
                temp *= 0.8
        self.stats.final_cost = cost

    def _try_move(self, movable: list[_CompState], temperature: float, dry: bool = False):
        """Propose one move; returns the accepted delta or None."""
        state = movable[int(self.rng.integers(len(movable)))]
        if state.is_iob:
            target = self._random_iob_site()
            other_name = self.iob_occ.get(target)
        else:
            target = self._random_slice_site(state)
            if target is None:
                return None
            other_name = self.slice_occ.get(target)
        if other_name == state.name:
            return None
        other = self.comps[other_name] if other_name else None
        if other is not None:
            if other.fixed:
                return None
            if not other.is_iob:
                # the displaced comp must be allowed at our current site
                r, c, _ = state.site
                if not other.region.contains(r, c):
                    return None

        affected = set(state.nets) | (set(other.nets) if other else set())
        before = sum(self.net_cost[n] for n in affected)
        old_site = state.site
        self._relocate(state, target, other, old_site)
        after = sum(self._net_cost(n) for n in affected)
        delta = after - before

        accept = delta <= 0 or (
            temperature > 0
            and self.rng.random() < math.exp(-delta / temperature)
        )
        if accept and not dry:
            for n in affected:
                self.net_cost[n] = self._net_cost(n)
            return delta
        # revert
        self._relocate(state, old_site, other, target)
        return delta if dry and accept else None

    def _relocate(self, state: _CompState, target, other, other_site) -> None:
        """Move ``state`` to ``target``, swapping ``other`` (if any) to
        ``other_site``.  Both occupancy entries are vacated before either is
        re-claimed so swaps cannot clobber each other."""
        occ = self.iob_occ if state.is_iob else self.slice_occ
        del occ[state.site]
        if other is not None:
            del occ[other.site]
        occ[target] = state.name
        state.site = target
        if other is not None:
            occ[other_site] = other.name
            other.site = other_site

    def _random_slice_site(self, state: _CompState) -> SliceSite | None:
        region = state.region.clip_to(self.device)
        for _ in range(8):
            r = int(self.rng.integers(region.rmin, region.rmax + 1))
            c = int(self.rng.integers(region.cmin, region.cmax + 1))
            if (r, c) in self.constraints.prohibited:
                continue
            return (r, c, int(self.rng.integers(2)))
        return None

    def _random_iob_site(self) -> IobSite:
        sites = self.device.geometry.iob_sites
        return sites[int(self.rng.integers(len(sites)))]

    # -- commit ---------------------------------------------------------------------------

    def _commit(self) -> None:
        for state in self.comps.values():
            if state.is_iob:
                self.design.iobs[state.name].site = state.site
            else:
                self.design.slices[state.name].site = state.site


def place(
    design: NcdDesign,
    constraints: Constraints | None = None,
    *,
    guide: NcdDesign | None = None,
    seed: int | None = None,
    effort: float = 1.0,
) -> PlacementStats:
    """Place ``design`` in place; see :class:`Placer`."""
    return Placer(design, constraints, guide=guide, seed=seed, effort=effort).run()
