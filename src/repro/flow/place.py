"""Simulated-annealing placement.

Standard VPR-style annealer over slice and IOB components: the cost is the
half-perimeter wirelength (HPWL) of all signal nets, moves are single-
component relocations or pairwise swaps, and the cooling schedule adapts
the starting temperature to the observed move-delta distribution.

Constraints honoured (the paper's phase-1/phase-2 floorplanning):

* ``LOC`` pins a component to a site — it never moves;
* an ``AREA_GROUP`` ``RANGE`` confines every matching component to its
  rectangle (module-region placement);
* ``PROHIBIT`` removes tiles from the site pool;
* a *guide* (a previously-placed design, paper §3.2 "guided floorplanning")
  seeds matching components at their old sites and locks them.

Runtime scales with the number of movable components — this is what the
PNR experiment measures when it compares module-sized against full-chip
place-and-route.

Two cost engines implement the inner loop:

* ``engine="array"`` (the default) keeps component tile positions and
  per-net HPWL costs in flat arrays with a CSR net→terms index built
  once per run.  Every move's affected-net working set (gather indices,
  reduceat boundaries, per-net term tuples) is precomputed per component,
  so evaluating a move is pure coordinate lookups: wide unions gather the
  term coordinates in one fancy-indexing pass and reduce them with
  ``np.minimum.reduceat`` / ``np.maximum.reduceat``, narrow ones walk the
  precomputed indices directly — neither path re-resolves component
  objects or net membership the way the scalar engine does per term;
* ``engine="scalar"`` is the reference implementation (per-net python
  loops over ``net_terms``), kept as the validation and benchmark
  baseline.

Both engines draw from the seeded RNG in exactly the same order and
compute bit-identical (integer) HPWL deltas, so **the same seed produces
the same placement on either engine** — the equivalence suite in
``tests/flow/test_vectorized.py`` asserts this site-for-site.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..devices import Device, IobSite, get_device, parse_slice_site
from ..devices.geometry import NUM_GCLK
from ..errors import PlacementError
from ..obs import current_metrics
from ..utils import make_rng
from .floorplan import Constraints, RegionRect, full_device_region
from .ncd import NcdDesign, SliceComp

SliceSite = tuple[int, int, int]

#: Cost-engine names accepted by :class:`Placer`.
PLACER_ENGINES = ("array", "scalar")


@dataclass
class PlacementStats:
    initial_cost: float = 0.0
    final_cost: float = 0.0
    moves_attempted: int = 0
    moves_accepted: int = 0
    temperatures: int = 0
    seconds: float = 0.0
    movable: int = 0
    fixed: int = 0


@dataclass
class _CompState:
    name: str
    is_iob: bool
    region: RegionRect | None = None      # slices only
    fixed: bool = False
    site: object = None                   # SliceSite or IobSite
    nets: list[str] = field(default_factory=list)


class Placer:
    """One placement run over an :class:`NcdDesign`."""

    def __init__(
        self,
        design: NcdDesign,
        constraints: Constraints | None = None,
        *,
        guide: NcdDesign | None = None,
        seed: int | None = None,
        effort: float = 1.0,
        engine: str = "array",
    ):
        if engine not in PLACER_ENGINES:
            raise PlacementError(
                f"unknown placer engine {engine!r} (choose from {PLACER_ENGINES})"
            )
        self.design = design
        self.device: Device = get_device(design.part)
        self.constraints = constraints or Constraints()
        self.constraints.validate(self.device)
        self.guide = guide
        self.rng = make_rng(seed)
        self.effort = max(0.1, effort)
        self.engine = engine
        self.stats = PlacementStats()
        self._clip_cache: dict[RegionRect, RegionRect] = {}

    # -- public ------------------------------------------------------------------

    def run(self) -> PlacementStats:
        t0 = time.perf_counter()
        self._assign_gclks()
        self._build_state()
        self._initial_placement()
        if self.engine == "array":
            self._build_arrays()
        self._anneal()
        self._commit()
        self.stats.seconds = time.perf_counter() - t0
        m = current_metrics()
        m.count("flow.place.moves_attempted", self.stats.moves_attempted)
        m.count("flow.place.moves_accepted", self.stats.moves_accepted)
        m.count("flow.place.temperatures", self.stats.temperatures)
        return self.stats

    # -- setup ---------------------------------------------------------------------

    def _assign_gclks(self) -> None:
        gclks = list(self.design.gclks.values())
        if len(gclks) > NUM_GCLK:
            raise PlacementError(
                f"{len(gclks)} clock ports exceed the {NUM_GCLK} global clock buffers"
            )
        taken = {g.index for g in gclks if g.index is not None}
        # guided flows keep each clock on the buffer the base design used,
        # preserving the module interface across re-implementation
        if self.guide is not None:
            for g in gclks:
                if g.index is not None:
                    continue
                ref = self.guide.gclks.get(g.name)
                if ref is not None and ref.index is not None and ref.index not in taken:
                    g.index = ref.index
                    taken.add(ref.index)
        free = iter(i for i in range(NUM_GCLK) if i not in taken)
        for g in gclks:
            if g.index is None:
                g.index = next(free)

    def _region_of(self, comp: SliceComp) -> RegionRect:
        group = self.constraints.group_of(comp.name)
        if group is None or group.range is None:
            return full_device_region(self.device)
        return group.range

    def _build_state(self) -> None:
        self.comps: dict[str, _CompState] = {}
        for comp in self.design.slices.values():
            self.comps[comp.name] = _CompState(
                comp.name, is_iob=False, region=self._region_of(comp)
            )
        for iob in self.design.iobs.values():
            self.comps[iob.name] = _CompState(iob.name, is_iob=True)
        # net incidence (signal nets only; clock nets ride the global network)
        self.net_terms: dict[str, list[str]] = {}
        for net in self.design.nets.values():
            if net.is_clock:
                continue
            terms = [net.source.comp] + [s.ref.comp for s in net.sinks]
            terms = [t for t in terms if t in self.comps]
            if len(set(terms)) < 2:
                continue
            self.net_terms[net.name] = terms
            for t in set(terms):
                self.comps[t].nets.append(net.name)

    def _initial_placement(self) -> None:
        dev = self.device
        prohibited = self.constraints.prohibited
        self.slice_occ: dict[SliceSite, str] = {}
        self.iob_occ: dict[IobSite, str] = {}

        # 1. explicit LOCs and guide seeds
        for state in self.comps.values():
            loc = self.constraints.loc_of(state.name)
            if loc is not None and not state.is_iob:
                site = parse_slice_site(loc)
                self._claim(state, site, fixed=True)
        if self.guide is not None:
            self._apply_guide()

        # 2. everything else, randomly within its region.  The legal-site
        # list of each distinct region is enumerated once and filtered per
        # component, preserving the exact (row-major, slice-minor) order the
        # per-component enumeration produced.
        all_iob_sites = list(dev.geometry.iob_sites)
        region_sites: dict[RegionRect, list[SliceSite]] = {}
        for state in self.comps.values():
            if state.site is not None:
                continue
            if state.is_iob:
                free = [s for s in all_iob_sites if s not in self.iob_occ]
                if not free:
                    raise PlacementError("out of IOB sites")
                self._claim(state, free[int(self.rng.integers(len(free)))])
            else:
                pool = region_sites.get(state.region)
                if pool is None:
                    pool = [
                        (r, c, s)
                        for r, c in state.region.clip_to(dev).sites()
                        if (r, c) not in prohibited
                        for s in (0, 1)
                    ]
                    region_sites[state.region] = pool
                sites = [site for site in pool if site not in self.slice_occ]
                if not sites:
                    raise PlacementError(
                        f"{state.name}: no free slice site in region {state.region} "
                        f"({len(self.design.slices)} slices to place)"
                    )
                self._claim(state, sites[int(self.rng.integers(len(sites)))])

    def _apply_guide(self) -> None:
        assert self.guide is not None
        for name, comp in self.guide.slices.items():
            state = self.comps.get(name)
            if state is None or state.is_iob or comp.site is None or state.site is not None:
                continue
            site = tuple(comp.site)
            if site not in self.slice_occ and state.region.contains(site[0], site[1]):
                self._claim(state, site, fixed=True)
        for name, iob in self.guide.iobs.items():
            state = self.comps.get(name)
            if state is None or not state.is_iob or iob.site is None or state.site is not None:
                continue
            if iob.site not in self.iob_occ:
                self._claim(state, iob.site, fixed=True)

    def _claim(self, state: _CompState, site, fixed: bool = False) -> None:
        if state.is_iob:
            if site in self.iob_occ:
                raise PlacementError(
                    f"IOB site {site.name} wanted by {state.name} and {self.iob_occ[site]}"
                )
            self.iob_occ[site] = state.name
        else:
            if site in self.slice_occ:
                raise PlacementError(
                    f"site {site} wanted by {state.name} and {self.slice_occ[site]}"
                )
            self.slice_occ[site] = state.name
        state.site = site
        state.fixed = state.fixed or fixed

    # -- array state (engine="array") ---------------------------------------------

    #: Affected-term count at which a move evaluation switches from the
    #: precomputed-index python path to the numpy reduceat path (numpy's
    #: per-call overhead only pays off on wide unions).
    _VEC_THRESHOLD = 96

    def _build_arrays(self) -> None:
        """Mirror component tiles and net incidence into flat arrays.

        * ``_rows``/``_cols`` (numpy) and ``_rows_l``/``_cols_l`` (list
          mirrors for scalar reads): current tile of component ``i``;
        * ``_net_ptr``/``_net_flat``: CSR of term component indices per net;
        * ``_aff_single[i]``: precomputed gather plan covering every net
          incident to component ``i`` — the whole per-move working set for
          a move into an empty site (swap plans are built and memoized per
          component pair on first use).

        Costs are integer HPWLs, so the array engine's deltas are exactly
        the scalar engine's.
        """
        names = list(self.comps)
        self._comp_idx = {n: i for i, n in enumerate(names)}
        n = len(names)
        rows = np.empty(n, np.int64)
        cols = np.empty(n, np.int64)
        for i, name in enumerate(names):
            rows[i], cols[i] = self._tile_of(self.comps[name])
        self._rows, self._cols = rows, cols
        self._rows_l = rows.tolist()
        self._cols_l = cols.tolist()

        net_names = list(self.net_terms)
        self._net_idx = {nm: j for j, nm in enumerate(net_names)}
        ptr = [0]
        flat: list[int] = []
        for nm in net_names:
            flat.extend(self._comp_idx[t] for t in self.net_terms[nm])
            ptr.append(len(flat))
        self._net_ptr = np.asarray(ptr, np.int64)
        self._net_flat = np.asarray(flat, np.int64)

        self._comp_nets: list[np.ndarray] = [
            np.asarray(
                sorted({self._net_idx[nm] for nm in self.comps[name].nets}),
                np.int64,
            )
            for name in names
        ]
        self._aff_single = [self._gather_plan(nets) for nets in self._comp_nets]
        self._aff_pairs: dict[tuple[int, int], tuple] = {}
        self._net_costs: list[int] = [0] * len(net_names)
        # numpy coordinate mirrors are synced lazily: moves record dirty
        # component indices and the reduceat path flushes them on demand
        self._dirty: list[int] | None = []
        self._dirty_cap = max(64, n)  # not-a-frame-count

    def _gather_plan(self, nets: np.ndarray) -> tuple:
        """Precomputed working set for evaluating a set of nets.

        Returns ``(nids, terms_by_net, flat, bounds, vectorize)``: ``nids``
        are the net ids (for cost-cache reads/writes), ``terms_by_net``
        holds each net's term component indices for the python path,
        ``flat``/``bounds`` feed the numpy gather + reduceat path, and
        ``vectorize`` picks between the paths by total term count.
        """
        if nets.size == 0:
            return (), (), None, None, False
        starts = self._net_ptr[nets].tolist()
        ends = self._net_ptr[nets + 1].tolist()
        flat = np.concatenate(
            [self._net_flat[s:e] for s, e in zip(starts, ends)]
        )
        bounds = np.zeros(nets.size, np.int64)
        np.cumsum((self._net_ptr[nets + 1] - self._net_ptr[nets])[:-1], out=bounds[1:])
        terms_by_net = tuple(
            tuple(self._net_flat[s:e].tolist()) for s, e in zip(starts, ends)
        )
        return (
            tuple(nets.tolist()), terms_by_net, flat, bounds,
            flat.size >= self._VEC_THRESHOLD,
        )

    def _affected_plan(self, i: int, j: int | None) -> tuple:
        """Gather plan for the union of two components' incident nets."""
        if j is None:
            return self._aff_single[i]
        key = (i, j) if i < j else (j, i)
        plan = self._aff_pairs.get(key)
        if plan is None:
            plan = self._gather_plan(
                np.union1d(self._comp_nets[key[0]], self._comp_nets[key[1]])
            )
            self._aff_pairs[key] = plan
        return plan

    def _mark_dirty(self, i: int) -> None:
        """Record that component ``i``'s list coordinates changed, so the
        numpy mirror patches it on the next flush."""
        d = self._dirty
        if d is not None:
            if len(d) < self._dirty_cap:
                d.append(i)
            else:
                self._dirty = None  # too stale to patch; full resync instead

    def _flush_coords(self) -> None:
        """Bring the numpy coordinate mirrors up to date with the lists."""
        if self._dirty is None:
            self._rows = np.asarray(self._rows_l, np.int64)
            self._cols = np.asarray(self._cols_l, np.int64)
        elif self._dirty:
            rows, cols = self._rows, self._cols
            rl, cl = self._rows_l, self._cols_l
            for i in self._dirty:
                rows[i] = rl[i]
                cols[i] = cl[i]
        self._dirty = []

    # -- cost -------------------------------------------------------------------------

    def _tile_of(self, state: _CompState) -> tuple[int, int]:
        if state.is_iob:
            return self.device.geometry.iob_tile(state.site)
        r, c, _ = state.site
        return r, c

    def _net_cost(self, net_name: str) -> float:
        rows, cols = [], []
        for t in self.net_terms[net_name]:
            r, c = self._tile_of(self.comps[t])
            rows.append(r)
            cols.append(c)
        return (max(rows) - min(rows)) + (max(cols) - min(cols))

    def _total_cost(self) -> float:
        if self.engine == "array":
            if self._net_costs:
                self._flush_coords()
                _, _, flat, bounds, _ = self._gather_plan(
                    np.arange(len(self._net_costs), dtype=np.int64)
                )
                r = self._rows[flat]
                c = self._cols[flat]
                costs = (
                    np.maximum.reduceat(r, bounds) - np.minimum.reduceat(r, bounds)
                ) + (np.maximum.reduceat(c, bounds) - np.minimum.reduceat(c, bounds))
                self._net_costs = costs.tolist()
            return sum(self._net_costs)
        self.net_cost = {n: self._net_cost(n) for n in self.net_terms}
        return sum(self.net_cost.values())

    # -- annealing ----------------------------------------------------------------------

    def _anneal(self) -> None:
        movable = [s for s in self.comps.values() if not s.fixed]
        self.stats.movable = len(movable)
        self.stats.fixed = len(self.comps) - len(movable)
        cost = self._total_cost()
        self.stats.initial_cost = cost
        if not movable or not self.net_terms:
            self.stats.final_cost = cost
            return

        try_move = (
            self._try_move_array if self.engine == "array" else self._try_move
        )
        # temperature from the spread of a random-move sample
        deltas = []
        for _ in range(min(50, 10 * len(movable))):
            d = try_move(movable, temperature=math.inf, dry=True)
            if d is not None:
                deltas.append(abs(d))
        temp = 2.0 * (float(np.std(deltas)) + 1.0) if deltas else 1.0

        inner = max(20, int(self.effort * 12 * len(movable)))
        stall = 0
        while stall < 4 and temp > 1e-3:
            accepted = 0
            for _ in range(inner):
                d = try_move(movable, temp)
                self.stats.moves_attempted += 1
                if d is not None:
                    accepted += 1
                    cost += d
                    self.stats.moves_accepted += 1
            self.stats.temperatures += 1
            ratio = accepted / inner
            stall = stall + 1 if ratio < 0.02 else 0
            # VPR-style adaptive cooling: cool slowly near 44% acceptance
            if ratio > 0.96:
                temp *= 0.5
            elif ratio > 0.4:
                temp *= 0.9
            elif ratio > 0.1:
                temp *= 0.95
            else:
                temp *= 0.8
        self.stats.final_cost = cost

    def _propose(self, movable: list[_CompState]):
        """Draw one candidate move: (state, target site, displaced comp).

        Both engines call this, so the RNG stream is consumed identically
        regardless of how the cost delta is evaluated.  Returns None for
        illegal or no-op proposals (still counted as attempts).
        """
        state = movable[int(self.rng.integers(len(movable)))]
        if state.is_iob:
            target = self._random_iob_site()
            other_name = self.iob_occ.get(target)
        else:
            target = self._random_slice_site(state)
            if target is None:
                return None
            other_name = self.slice_occ.get(target)
        if other_name == state.name:
            return None
        other = self.comps[other_name] if other_name else None
        if other is not None:
            if other.fixed:
                return None
            if not other.is_iob:
                # the displaced comp must be allowed at our current site
                r, c, _ = state.site
                if not other.region.contains(r, c):
                    return None
        return state, target, other

    def _accept(self, delta, temperature: float) -> bool:
        """Metropolis criterion; draws from the RNG only for uphill moves."""
        return delta <= 0 or (
            temperature > 0
            and self.rng.random() < math.exp(-delta / temperature)
        )

    def _try_move(self, movable: list[_CompState], temperature: float, dry: bool = False):
        """Propose one move (scalar engine); returns the accepted delta or None."""
        proposal = self._propose(movable)
        if proposal is None:
            return None
        state, target, other = proposal

        affected = set(state.nets) | (set(other.nets) if other else set())
        before = sum(self.net_cost[n] for n in affected)
        old_site = state.site
        self._relocate(state, target, other, old_site)
        # one evaluation per affected net: the same values decide the move
        # and, on acceptance, refresh the cost cache
        after_costs = {n: self._net_cost(n) for n in affected}
        after = sum(after_costs.values())
        delta = after - before

        accept = self._accept(delta, temperature)
        if accept and not dry:
            self.net_cost.update(after_costs)
            return delta
        # revert
        self._relocate(state, old_site, other, target)
        return delta if dry and accept else None

    def _try_move_array(self, movable: list[_CompState], temperature: float, dry: bool = False):
        """Propose one move (array engine); returns the accepted delta or None.

        The move is evaluated on hypothetically-patched coordinate lists;
        occupancy and component state are only touched (one ``_relocate``)
        when the move is actually committed, so rejected proposals cost no
        dictionary churn at all.
        """
        proposal = self._propose(movable)
        if proposal is None:
            return None
        state, target, other = proposal

        i = self._comp_idx[state.name]
        j = self._comp_idx[other.name] if other is not None else None
        nids, terms_by_net, flat, bounds, vectorize = self._affected_plan(i, j)
        costs = self._net_costs
        before = 0
        for nid in nids:
            before += costs[nid]

        rows_l, cols_l = self._rows_l, self._cols_l
        old_r, old_c = rows_l[i], cols_l[i]
        if state.is_iob:
            new_r, new_c = self.device.geometry.iob_tile(target)
        else:
            new_r, new_c = target[0], target[1]
        rows_l[i], cols_l[i] = new_r, new_c
        if j is not None:
            # the displaced comp swaps into state's old tile
            j_r, j_c = rows_l[j], cols_l[j]
            rows_l[j], cols_l[j] = old_r, old_c

        if vectorize:
            self._mark_dirty(i)
            if j is not None:
                self._mark_dirty(j)
            self._flush_coords()
            r = self._rows[flat]
            c = self._cols[flat]
            after_vals = (
                (np.maximum.reduceat(r, bounds) - np.minimum.reduceat(r, bounds))
                + (np.maximum.reduceat(c, bounds) - np.minimum.reduceat(c, bounds))
            ).tolist()
        else:
            after_vals = []
            append = after_vals.append
            for terms in terms_by_net:
                if len(terms) == 2:
                    a, b = terms
                    dr = rows_l[a] - rows_l[b]
                    dc = cols_l[a] - cols_l[b]
                    append((dr if dr >= 0 else -dr) + (dc if dc >= 0 else -dc))
                else:
                    rs = [rows_l[t] for t in terms]
                    cs = [cols_l[t] for t in terms]
                    append(max(rs) - min(rs) + max(cs) - min(cs))
        after = sum(after_vals)
        delta = after - before

        accept = self._accept(delta, temperature)
        if accept and not dry:
            self._relocate(state, target, other, state.site)
            if not vectorize:  # the flush above already synced the mirror
                self._mark_dirty(i)
                if j is not None:
                    self._mark_dirty(j)
            for nid, v in zip(nids, after_vals):
                costs[nid] = v
            return delta
        # reject (or dry run): restore the hypothetical coordinates
        rows_l[i], cols_l[i] = old_r, old_c
        if j is not None:
            rows_l[j], cols_l[j] = j_r, j_c
        if vectorize:
            # the numpy mirror saw the hypothetical values; re-patch it
            self._mark_dirty(i)
            if j is not None:
                self._mark_dirty(j)
        return delta if dry and accept else None

    def _relocate(self, state: _CompState, target, other, other_site) -> None:
        """Move ``state`` to ``target``, swapping ``other`` (if any) to
        ``other_site``.  Both occupancy entries are vacated before either is
        re-claimed so swaps cannot clobber each other."""
        occ = self.iob_occ if state.is_iob else self.slice_occ
        del occ[state.site]
        if other is not None:
            del occ[other.site]
        occ[target] = state.name
        state.site = target
        if other is not None:
            occ[other_site] = other.name
            other.site = other_site

    def _random_slice_site(self, state: _CompState) -> SliceSite | None:
        region = self._clip_cache.get(state.region)
        if region is None:
            region = state.region.clip_to(self.device)
            self._clip_cache[state.region] = region
        for _ in range(8):
            r = int(self.rng.integers(region.rmin, region.rmax + 1))
            c = int(self.rng.integers(region.cmin, region.cmax + 1))
            if (r, c) in self.constraints.prohibited:
                continue
            return (r, c, int(self.rng.integers(2)))
        return None

    def _random_iob_site(self) -> IobSite:
        sites = self.device.geometry.iob_sites
        return sites[int(self.rng.integers(len(sites)))]

    # -- commit ---------------------------------------------------------------------------

    def _commit(self) -> None:
        for state in self.comps.values():
            if state.is_iob:
                self.design.iobs[state.name].site = state.site
            else:
                self.design.slices[state.name].site = state.site


def place(
    design: NcdDesign,
    constraints: Constraints | None = None,
    *,
    guide: NcdDesign | None = None,
    seed: int | None = None,
    effort: float = 1.0,
    engine: str = "array",
) -> PlacementStats:
    """Place ``design`` in place; see :class:`Placer`."""
    return Placer(
        design, constraints, guide=guide, seed=seed, effort=effort, engine=engine
    ).run()
