"""The NCD-equivalent physical design database.

An :class:`NcdDesign` is what the Foundation-equivalent flow produces and
what ``bitgen``, the XDL converter, and JPG consume: packed slice/IOB
components, their placement, and the routed nets (as explicit PIP lists).

Like the real thing it has a binary on-disk form (:meth:`NcdDesign.save` /
:meth:`NcdDesign.load`; magic ``XNCD``), and an ASCII twin — the XDL text
produced by :mod:`repro.xdl` — carrying the same information.

Component pin model
-------------------

Slice outputs: ``X`` (F-LUT combinational), ``Y`` (G-LUT), ``XQ``/``YQ``
(flip-flops).  Slice sinks: LUT input *classes* ``F``/``G`` with a logical
input index (the router assigns the physical pin F1..F4/G1..G4 and records
it in the bel's ``pin_map``), bypass pins ``BX``/``BY`` (FF D when not fed
by its LUT), ``CE``, ``SR``, ``CLK``.  IOB components source ``PAD_IN``
(pad drives fabric) or sink ``PAD_OUT``; a clock buffer component sources
``GCLK``.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field

from ..devices import Device, IobSite, get_device, parse_iob_site
from ..devices.geometry import Side
from ..errors import FlowError

MAGIC = b"XNCD"
VERSION = 2


@dataclass
class Bel:
    """One LUT+FF position of a slice ('F' pairs with FFX, 'G' with FFY)."""

    letter: str                       # 'F' or 'G'
    lut_cell: str | None = None
    lut_init: int = 0
    lut_width: int = 0
    lut_inputs: list[str] = field(default_factory=list)   # logical input nets
    pin_map: list[int] | None = None  # logical input -> physical pin (router)
    ff_cell: str | None = None
    ff_init: int = 0
    ff_sync: bool = True
    ff_d_from_lut: bool = False       # True: FF.D <- LUT output (DXMUX=0)

    @property
    def used(self) -> bool:
        return self.lut_cell is not None or self.ff_cell is not None

    @property
    def out_pin(self) -> str:
        """Combinational output pin name for this bel."""
        return "X" if self.letter == "F" else "Y"

    @property
    def ff_out_pin(self) -> str:
        return "XQ" if self.letter == "F" else "YQ"

    @property
    def bypass_pin(self) -> str:
        return "BX" if self.letter == "F" else "BY"


@dataclass
class SliceComp:
    """A packed slice component (an XDL ``inst ... "SLICE"``)."""

    name: str
    group: str | None = None           # module/area-group tag
    site: tuple[int, int, int] | None = None   # (row, col, slice index)
    bels: dict[str, Bel] = field(default_factory=lambda: {"F": Bel("F"), "G": Bel("G")})
    clk_net: str | None = None
    ce_net: str | None = None
    sr_net: str | None = None

    @property
    def placed(self) -> bool:
        return self.site is not None

    def cells(self) -> list[str]:
        out = []
        for bel in self.bels.values():
            if bel.lut_cell:
                out.append(bel.lut_cell)
            if bel.ff_cell:
                out.append(bel.ff_cell)
        return out


@dataclass
class IobComp:
    """A placed input/output buffer."""

    name: str
    direction: str                     # "in" | "out" | "clock"
    port: str
    net: str
    site: IobSite | None = None
    group: str | None = None

    @property
    def placed(self) -> bool:
        return self.site is not None


@dataclass
class GclkComp:
    """A global clock buffer (driven by its dedicated pad)."""

    name: str
    port: str
    net: str
    index: int | None = None           # which GCLK line, assigned at placement


@dataclass
class PinRef:
    """One net terminal on a component."""

    comp: str
    pin: str                            # X/Y/XQ/YQ | F/G | BX/BY/CE/SR/CLK | PAD_IN/PAD_OUT | GCLK
    logical_index: int = -1             # for F/G sinks: which logical LUT input


@dataclass
class SinkRef:
    """A sink terminal plus routing results."""

    ref: PinRef
    phys_pin: str | None = None         # resolved wire name, e.g. "S0_F3"
    delay_ns: float = 0.0               # routed path delay source->this sink


@dataclass
class PhysNet:
    """A net with physical terminals and (after routing) its PIP tree."""

    name: str
    source: PinRef
    sinks: list[SinkRef] = field(default_factory=list)
    pips: list[tuple[int, int, int]] = field(default_factory=list)  # (row, col, pip index)
    routed: bool = False
    is_clock: bool = False


class NcdDesign:
    """The physical design database."""

    def __init__(self, name: str, part: str):
        self.name = name
        self.part = part
        self.slices: dict[str, SliceComp] = {}
        self.iobs: dict[str, IobComp] = {}
        self.gclks: dict[str, GclkComp] = {}
        self.nets: dict[str, PhysNet] = {}

    # -- queries ---------------------------------------------------------------

    @property
    def device(self) -> Device:
        return get_device(self.part)

    def comp(self, name: str) -> SliceComp | IobComp | GclkComp:
        for pool in (self.slices, self.iobs, self.gclks):
            if name in pool:
                return pool[name]
        raise FlowError(f"no component named {name!r}")

    def placed(self) -> bool:
        return all(c.placed for c in self.slices.values()) and all(
            c.placed for c in self.iobs.values()
        )

    def routed(self) -> bool:
        return all(n.routed for n in self.nets.values())

    def used_tiles(self) -> set[tuple[int, int]]:
        tiles = {(c.site[0], c.site[1]) for c in self.slices.values() if c.site}
        return tiles

    def used_columns(self) -> set[int]:
        """CLB fabric columns touched by placement or routing."""
        cols = {c.site[1] for c in self.slices.values() if c.site}
        for net in self.nets.values():
            cols.update(col for _, col, _ in net.pips)
        return cols

    def stats(self) -> dict[str, int]:
        return {
            "slices": len(self.slices),
            "iobs": len(self.iobs),
            "nets": len(self.nets),
            "pips": sum(len(n.pips) for n in self.nets.values()),
        }

    # -- binary serialization -----------------------------------------------------

    def save(self, path: str) -> None:
        with open(path, "wb") as f:
            f.write(self.to_bytes())

    @classmethod
    def load(cls, path: str) -> "NcdDesign":
        with open(path, "rb") as f:
            return cls.from_bytes(f.read())

    def to_bytes(self) -> bytes:
        out = io.BytesIO()
        w = _Writer(out)
        out.write(MAGIC)
        w.u16(VERSION)
        w.s(self.name)
        w.s(self.part)
        w.u32(len(self.slices))
        for comp in self.slices.values():
            w.s(comp.name)
            w.s(comp.group or "")
            if comp.site is None:
                w.u8(0)
            else:
                w.u8(1)
                w.u16(comp.site[0]); w.u16(comp.site[1]); w.u8(comp.site[2])
            w.s(comp.clk_net or ""); w.s(comp.ce_net or ""); w.s(comp.sr_net or "")
            for letter in ("F", "G"):
                bel = comp.bels[letter]
                w.s(bel.lut_cell or "")
                w.u32(bel.lut_init)
                w.u8(bel.lut_width)
                w.u8(len(bel.lut_inputs))
                for n in bel.lut_inputs:
                    w.s(n)
                if bel.pin_map is None:
                    w.u8(0)
                else:
                    w.u8(1)
                    w.u8(len(bel.pin_map))
                    for p in bel.pin_map:
                        w.u8(p)
                w.s(bel.ff_cell or "")
                w.u8(bel.ff_init)
                w.u8(int(bel.ff_sync))
                w.u8(int(bel.ff_d_from_lut))
        w.u32(len(self.iobs))
        for iob in self.iobs.values():
            w.s(iob.name); w.s(iob.direction); w.s(iob.port); w.s(iob.net)
            w.s(iob.site.name if iob.site else "")
            w.s(iob.group or "")
        w.u32(len(self.gclks))
        for g in self.gclks.values():
            w.s(g.name); w.s(g.port); w.s(g.net)
            w.u8(0xFF if g.index is None else g.index)
        w.u32(len(self.nets))
        for net in self.nets.values():
            w.s(net.name)
            w.u8(int(net.routed) | (int(net.is_clock) << 1))
            w.s(net.source.comp); w.s(net.source.pin)
            w.u8(net.source.logical_index & 0xFF)
            w.u16(len(net.sinks))
            for sink in net.sinks:
                w.s(sink.ref.comp); w.s(sink.ref.pin)
                w.u8(sink.ref.logical_index & 0xFF)
                w.s(sink.phys_pin or "")
                w.f64(sink.delay_ns)
            w.u32(len(net.pips))
            for r, c, p in net.pips:
                w.u16(r); w.u16(c); w.u16(p)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "NcdDesign":
        if not data.startswith(MAGIC):
            raise FlowError("not an NCD database (bad magic)")
        r = _Reader(data, len(MAGIC))
        version = r.u16()
        if version != VERSION:
            raise FlowError(f"NCD version {version} unsupported (expected {VERSION})")
        design = cls(r.s(), r.s())
        for _ in range(r.u32()):
            comp = SliceComp(r.s())
            comp.group = r.s() or None
            if r.u8():
                comp.site = (r.u16(), r.u16(), r.u8())
            comp.clk_net = r.s() or None
            comp.ce_net = r.s() or None
            comp.sr_net = r.s() or None
            for letter in ("F", "G"):
                bel = comp.bels[letter]
                bel.lut_cell = r.s() or None
                bel.lut_init = r.u32()
                bel.lut_width = r.u8()
                bel.lut_inputs = [r.s() for _ in range(r.u8())]
                if r.u8():
                    bel.pin_map = [r.u8() for _ in range(r.u8())]
                bel.ff_cell = r.s() or None
                bel.ff_init = r.u8()
                bel.ff_sync = bool(r.u8())
                bel.ff_d_from_lut = bool(r.u8())
            design.slices[comp.name] = comp
        for _ in range(r.u32()):
            iob = IobComp(r.s(), r.s(), r.s(), r.s())
            site_name = r.s()
            iob.site = parse_iob_site(site_name) if site_name else None
            iob.group = r.s() or None
            design.iobs[iob.name] = iob
        for _ in range(r.u32()):
            g = GclkComp(r.s(), r.s(), r.s())
            idx = r.u8()
            g.index = None if idx == 0xFF else idx
            design.gclks[g.name] = g
        for _ in range(r.u32()):
            name = r.s()
            flags = r.u8()
            src = PinRef(r.s(), r.s(), _signed_idx(r.u8()))
            net = PhysNet(name, src, routed=bool(flags & 1), is_clock=bool(flags & 2))
            for _ in range(r.u16()):
                ref = PinRef(r.s(), r.s(), _signed_idx(r.u8()))
                phys = r.s() or None
                delay = r.f64()
                net.sinks.append(SinkRef(ref, phys, delay))
            for _ in range(r.u32()):
                net.pips.append((r.u16(), r.u16(), r.u16()))
            design.nets[name] = net
        return design


def _signed_idx(v: int) -> int:
    return v - 256 if v >= 128 else v


class _Writer:
    def __init__(self, out: io.BytesIO):
        self.out = out

    def u8(self, v: int) -> None:
        self.out.write(struct.pack(">B", v & 0xFF))

    def u16(self, v: int) -> None:
        self.out.write(struct.pack(">H", v & 0xFFFF))

    def u32(self, v: int) -> None:
        self.out.write(struct.pack(">I", v & 0xFFFFFFFF))

    def f64(self, v: float) -> None:
        self.out.write(struct.pack(">d", v))

    def s(self, v: str) -> None:
        raw = v.encode()
        if len(raw) > 0xFFFF:
            raise FlowError("string too long for NCD serialization")
        self.u16(len(raw))
        self.out.write(raw)


class _Reader:
    def __init__(self, data: bytes, pos: int = 0):
        self.data = data
        self.pos = pos

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise FlowError("truncated NCD database")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return struct.unpack(">B", self._take(1))[0]

    def u16(self) -> int:
        return struct.unpack(">H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def f64(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def s(self) -> str:
        return self._take(self.u16()).decode()


# re-export for convenience of importers
__all__ = [
    "Bel", "GclkComp", "IobComp", "NcdDesign", "PhysNet", "PinRef",
    "SinkRef", "SliceComp", "Side",
]
