"""Floorplanning objects: region rectangles, area groups, constraints.

These are the semantic form of what a UCF file expresses: ``INST`` LOC
constraints pin a component to a site, ``AREA_GROUP`` + ``RANGE`` confine a
module's logic to a rectangle of CLBs.  JPG's phase-1/phase-2 methodology
(paper §3.1–3.2) is carried entirely by these objects: the base design
assigns each sub-module an area group, and each replacement module is
re-implemented under the *same* group range so its logic lands in the same
frames.
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass, field

from ..devices import Device, clb_site_name, parse_clb_site
from ..errors import ConstraintError


@dataclass(frozen=True, order=True)
class RegionRect:
    """Inclusive rectangle of CLB tiles (0-based coordinates)."""

    rmin: int
    cmin: int
    rmax: int
    cmax: int

    def __post_init__(self) -> None:
        if self.rmin > self.rmax or self.cmin > self.cmax:
            raise ConstraintError(f"degenerate region {self}")
        if min(self.rmin, self.cmin) < 0:
            raise ConstraintError(f"negative region corner {self}")

    @classmethod
    def from_ucf(cls, text: str) -> "RegionRect":
        """Parse ``CLB_R1C1:CLB_R8C12`` (UCF RANGE syntax)."""
        m = re.match(r"^\s*(\S+)\s*:\s*(\S+)\s*$", text)
        if not m:
            raise ConstraintError(f"bad RANGE {text!r} (expected SITE:SITE)")
        r1, c1 = parse_clb_site(m.group(1))
        r2, c2 = parse_clb_site(m.group(2))
        return cls(min(r1, r2), min(c1, c2), max(r1, r2), max(c1, c2))

    def to_ucf(self) -> str:
        return f"{clb_site_name(self.rmin, self.cmin)}:{clb_site_name(self.rmax, self.cmax)}"

    def contains(self, row: int, col: int) -> bool:
        return self.rmin <= row <= self.rmax and self.cmin <= col <= self.cmax

    def contains_rect(self, other: "RegionRect") -> bool:
        return (self.rmin <= other.rmin and self.cmin <= other.cmin
                and self.rmax >= other.rmax and self.cmax >= other.cmax)

    def overlaps(self, other: "RegionRect") -> bool:
        return not (
            self.rmax < other.rmin or other.rmax < self.rmin
            or self.cmax < other.cmin or other.cmax < self.cmin
        )

    def clip_to(self, device: Device) -> "RegionRect":
        return RegionRect(
            max(self.rmin, 0), max(self.cmin, 0),
            min(self.rmax, device.rows - 1), min(self.cmax, device.cols - 1),
        )

    @property
    def height(self) -> int:
        return self.rmax - self.rmin + 1

    @property
    def width(self) -> int:
        return self.cmax - self.cmin + 1

    @property
    def tiles(self) -> int:
        return self.height * self.width

    @property
    def slice_capacity(self) -> int:
        return self.tiles * 2

    def sites(self):
        """Iterate all (row, col) tiles of the region."""
        for r in range(self.rmin, self.rmax + 1):
            for c in range(self.cmin, self.cmax + 1):
                yield r, c

    def clb_columns(self) -> range:
        """The CLB fabric columns the region covers — what determines which
        configuration frames a module's changes can touch."""
        return range(self.cmin, self.cmax + 1)

    def __str__(self) -> str:
        return self.to_ucf()


def full_device_region(device: Device) -> RegionRect:
    return RegionRect(0, 0, device.rows - 1, device.cols - 1)


@dataclass
class AreaGroup:
    """A named group of instances confined to a region."""

    name: str
    patterns: list[str] = field(default_factory=list)  # instance-name globs
    range: RegionRect | None = None

    def matches(self, inst_name: str) -> bool:
        return any(fnmatch.fnmatchcase(inst_name, p) for p in self.patterns)


@dataclass
class Constraints:
    """Everything the placer honours."""

    locs: dict[str, str] = field(default_factory=dict)   # inst glob -> site name
    groups: list[AreaGroup] = field(default_factory=list)
    prohibited: set[tuple[int, int]] = field(default_factory=set)  # CLB tiles

    def group_of(self, inst_name: str) -> AreaGroup | None:
        for g in self.groups:
            if g.matches(inst_name):
                return g
        return None

    def group_by_name(self, name: str) -> AreaGroup:
        for g in self.groups:
            if g.name == name:
                return g
        raise ConstraintError(f"no area group named {name!r}")

    def loc_of(self, inst_name: str) -> str | None:
        for pattern, site in self.locs.items():
            if fnmatch.fnmatchcase(inst_name, pattern):
                return site
        return None

    def validate(self, device: Device) -> None:
        for g in self.groups:
            if g.range is not None and not full_device_region(device).contains_rect(g.range):
                raise ConstraintError(
                    f"area group {g.name}: range {g.range} exceeds {device.name} "
                    f"array {device.rows}x{device.cols}"
                )
        for r, c in self.prohibited:
            try:
                device.geometry.check_tile(r, c)
            except Exception as exc:
                raise ConstraintError(f"PROHIBIT site out of range: {exc}") from None

    def merged_with(self, other: "Constraints") -> "Constraints":
        merged = Constraints(dict(self.locs), list(self.groups), set(self.prohibited))
        merged.locs.update(other.locs)
        merged.groups.extend(other.groups)
        merged.prohibited.update(other.prohibited)
        return merged
