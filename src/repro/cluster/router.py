"""The cluster front end: consistent-hash routing with failover.

:class:`Router` speaks the same JSON-lines protocol as
:class:`~repro.serve.protocol.JpgServer` on its client side (``ping`` /
``stats`` / ``submit`` / ``shutdown``), so ``jpg submit`` and the load
generator talk to a router and a single node interchangeably.  Behind it,
every ``submit`` is placed on the :class:`~repro.cluster.ring.HashRing`
by ``(device, region footprint, request digest)`` and forwarded to the
owning worker node over a persistent pipelined connection.

Fault model:

* **Health checking** — a per-node loop pings on an interval with a
  deadline; a missed ping marks the node *down*: it leaves the ring
  (keys re-hash onto the survivors) and its link is closed.  The loop
  keeps probing, so a recovered node rejoins automatically.
* **Request draining on node loss** — in-flight requests to a dying node
  fail over, they are not lost: closing a link rejects every pending
  future, and :meth:`Router._dispatch` re-resolves the owner on the
  *updated* ring and resends.  Generation requests are idempotent
  (content-addressed, single-flighted on the node), so the retry is safe
  by construction — a replay through a mid-run node kill completes with
  zero lost requests and identical bytes.
* **Re-hash on membership change** — :meth:`add_node` /
  :meth:`remove_node` (and down/up transitions) mutate the ring only;
  moved keys land on nodes whose disk caches then self-warm via the
  peer-fill tier (:mod:`repro.cluster.peers`).

Metrics (``cluster.*`` on the router's registry): ``cluster.routed``,
``cluster.retries``, ``cluster.node_down`` / ``cluster.node_up``,
``cluster.no_nodes``, and a ``cluster.route`` latency histogram with
p50/p95/p99 export.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import signal
import time
from collections.abc import Mapping

from ..errors import ServeError
from ..flow.floorplan import RegionRect
from ..obs import Metrics
from ..serve.diskcache import region_tag
from ..serve.protocol import _encode
from .ring import HashRing, request_key


class NodeDownError(ServeError):
    """A worker link died with requests in flight (they will fail over)."""


class NodeLink:
    """One persistent pipelined connection to a worker node.

    Requests get link-local ids; a reader task matches responses back to
    their futures, so many router clients share one upstream socket.
    Any transport error rejects every pending future with
    :class:`NodeDownError` — the router's dispatch loop then fails the
    requests over to the re-hashed owner.
    """

    def __init__(self, name: str, address: str):
        self.name = name
        self.address = address
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pump: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._conn_lock = asyncio.Lock()

    @property
    def connected(self) -> bool:
        """True while the link has a live (unpumped-out) connection."""
        return self._writer is not None

    async def _connect(self) -> None:
        async with self._conn_lock:
            if self._writer is not None:
                return
            host, _, port = self.address.rpartition(":")
            if port.isdigit() and "/" not in self.address:
                reader, writer = await asyncio.open_connection(
                    host or "127.0.0.1", int(port)
                )
            else:
                reader, writer = await asyncio.open_unix_connection(self.address)
            self._reader, self._writer = reader, writer
            self._pump = asyncio.get_running_loop().create_task(self._pump_loop())

    async def _pump_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    resp = json.loads(line)
                except ValueError:
                    continue
                future = self._pending.pop(resp.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(resp)
        except (OSError, asyncio.CancelledError):
            pass
        finally:
            self._fail_pending()

    def _fail_pending(self) -> None:
        self._writer = None
        self._reader = None
        pending, self._pending = dict(self._pending), {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    NodeDownError(f"node {self.name} ({self.address}) went away")
                )

    async def request(self, msg: dict, *, timeout: float) -> dict:
        """Send one op and await its id-matched response (raises
        :class:`NodeDownError` / ``TimeoutError`` / ``OSError`` on loss)."""
        await self._connect()
        assert self._writer is not None
        self._next_id += 1
        rid = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            self._writer.write(_encode({**msg, "id": rid}))
            await self._writer.drain()
            return await asyncio.wait_for(future, timeout)
        finally:
            self._pending.pop(rid, None)

    async def ping(self, *, timeout: float) -> None:
        """One liveness probe (raises on any failure)."""
        resp = await self.request({"op": "ping"}, timeout=timeout)
        if not resp.get("ok"):
            raise NodeDownError(f"node {self.name} failed ping: {resp}")

    async def close(self) -> None:
        """Tear the connection down, rejecting anything in flight."""
        pump, self._pump = self._pump, None
        writer, self._writer = self._writer, None
        self._fail_pending()
        if writer is not None:
            with contextlib.suppress(Exception):
                writer.close()
        if pump is not None:
            pump.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await pump


class Router:
    """Consistent-hash front end over N worker nodes (one asyncio loop)."""

    def __init__(
        self,
        nodes: Mapping[str, str],
        *,
        part: str = "",
        metrics: Metrics | None = None,
        ping_interval: float = 1.0,
        ping_timeout: float = 5.0,
        request_timeout: float = 300.0,
        stop_nodes: bool = False,
    ):
        """``nodes`` maps stable node names to dial addresses
        (``host:port`` or unix paths).  ``part`` joins the routing key so
        multi-device fleets shard per device.  ``stop_nodes`` makes the
        router's ``shutdown`` op also drain and stop every worker."""
        if not nodes:
            raise ServeError("a router needs at least one node")
        self.part = part
        self.metrics = metrics if metrics is not None else Metrics(keep_events=False)
        self.ping_interval = ping_interval
        self.ping_timeout = ping_timeout
        self.request_timeout = request_timeout
        self.stop_nodes = stop_nodes
        self.links = {name: NodeLink(name, addr) for name, addr in nodes.items()}
        self.ring = HashRing(self.links)
        self._down: set[str] = set()
        self._health_tasks: list[asyncio.Task] = []
        self._shutdown = asyncio.Event()
        self._stopping = False
        #: Bound ``(host, port)`` once :meth:`serve_tcp` is listening.
        self.tcp_address: tuple[str, int] | None = None
        #: The serving loop, once running — membership mutations from
        #: other threads go through ``loop.call_soon_threadsafe``.
        self.loop: asyncio.AbstractEventLoop | None = None

    # -- membership -----------------------------------------------------------

    @property
    def up_nodes(self) -> frozenset[str]:
        """Names currently in the ring (health-checked members)."""
        return self.ring.nodes

    def add_node(self, name: str, address: str) -> None:
        """Join a node at runtime (keys re-hash; peers self-warm)."""
        self.links.setdefault(name, NodeLink(name, address)).address = address
        self._down.discard(name)
        self.ring.add(name)
        self.metrics.count("cluster.node_up")
        self._watch(name)

    def remove_node(self, name: str) -> None:
        """Remove a node from routing (its link drains via failover)."""
        self.ring.remove(name)
        self._down.discard(name)
        link = self.links.pop(name, None)
        if link is not None:
            asyncio.get_running_loop().create_task(link.close())

    def _mark_down(self, name: str) -> None:
        if name not in self.ring or name in self._down:
            return
        self._down.add(name)
        self.ring.remove(name)
        self.metrics.count("cluster.node_down")
        link = self.links.get(name)
        if link is not None:
            asyncio.get_running_loop().create_task(link.close())

    def _mark_up(self, name: str) -> None:
        if name not in self._down:
            return
        self._down.discard(name)
        self.ring.add(name)
        self.metrics.count("cluster.node_up")

    def _watch(self, name: str) -> None:
        task = asyncio.get_running_loop().create_task(self._health_loop(name))
        self._health_tasks.append(task)

    async def _health_loop(self, name: str) -> None:
        """Ping one node forever: down on a missed deadline, back up on
        the next success (recovered nodes rejoin automatically)."""
        while not self._shutdown.is_set():
            link = self.links.get(name)
            if link is None:
                return
            try:
                await link.ping(timeout=self.ping_timeout)
            except Exception:
                self._mark_down(name)
            else:
                self._mark_up(name)
            await asyncio.sleep(self.ping_interval)

    # -- dispatch -------------------------------------------------------------

    def routing_key(self, msg: dict) -> str:
        """The ring key of one submit message (device, region, digest).

        Mirrors :meth:`~repro.serve.service.GenRequest.digest` and the
        disk cache's region tag byte-for-byte, so the router, the owning
        node's disk cache, and every node's peer-fill probe all agree on
        placement without coordination.  An unparsable region still
        routes (the node answers bad-request)."""
        region = msg.get("region")
        if region is None:
            tag = "none"
        else:
            try:
                tag = region_tag(RegionRect.from_ucf(str(region)))
            except Exception:
                tag = "unparsed"
        canonical = json.dumps(
            {
                "name": str(msg.get("name") or "module"),
                "xdl": msg.get("xdl"),
                "ucf": msg.get("ucf"),
                "region": msg.get("region"),
                "granularity": str(msg.get("granularity", "column")),
            },
            sort_keys=True,
        )
        digest = hashlib.sha256(canonical.encode()).hexdigest()
        return request_key(self.part, tag, digest)

    async def _dispatch(self, msg: dict) -> dict:
        """Forward one op to the key's owner, failing over on node loss.

        Every transport failure marks the node down, re-resolves the
        owner on the updated ring, and resends — an accepted request is
        answered unless the whole fleet is gone."""
        client_id = msg.get("id")
        key = self.routing_key(msg)
        body = {k: v for k, v in msg.items() if k != "id"}
        start = time.perf_counter()
        attempts = len(self.links) + 2
        for _ in range(attempts):
            try:
                name = self.ring.owner(key)
            except ServeError:
                break
            link = self.links.get(name)
            if link is None:
                self.ring.remove(name)
                continue
            try:
                resp = await link.request(body, timeout=self.request_timeout)
            except (NodeDownError, OSError, asyncio.TimeoutError, ValueError):
                self._mark_down(name)
                self.metrics.count("cluster.retries")
                continue
            resp["id"] = client_id
            resp.setdefault("node", name)
            self.metrics.count("cluster.routed")
            self.metrics.record("cluster.route", time.perf_counter() - start)
            return resp
        self.metrics.count("cluster.no_nodes")
        return {"id": client_id, "ok": False, "code": "no-nodes",
                "error": "no worker node is reachable for this request"}

    async def _stats_reply(self, rid) -> dict:
        """Aggregate router + per-node stats (down nodes reported, not
        awaited)."""
        nodes: dict[str, dict] = {}

        async def probe(name: str, link: NodeLink) -> None:
            entry: dict = {"address": link.address, "up": name in self.ring}
            if name in self.ring:
                try:
                    resp = await link.request({"op": "stats"}, timeout=self.ping_timeout)
                    entry["pending"] = resp.get("pending")
                    entry["stats"] = resp.get("stats")
                except Exception:
                    entry["up"] = False
            nodes[name] = entry

        await asyncio.gather(*(probe(n, l) for n, l in self.links.items()))
        snap = self.metrics.snapshot()
        return {
            "id": rid, "ok": True, "router": True,
            "nodes": nodes,
            "counters": {k: v for k, v in sorted(snap["counters"].items())
                         if k.startswith("cluster.")},
            "latency": {
                name: {k: (round(1e3 * v, 3) if k != "count" else v)
                       for k, v in row.items()}
                for name, row in self.metrics.latency_summary("cluster.").items()
            },
        }

    # -- client-facing server -------------------------------------------------

    def request_shutdown(self) -> None:
        """Begin a graceful stop (signal-handler safe, idempotent)."""
        if self._stopping:
            return
        self._stopping = True
        asyncio.get_running_loop().create_task(self._stop())

    async def _stop(self) -> None:
        if self.stop_nodes:
            async def stop_node(link: NodeLink) -> None:
                with contextlib.suppress(Exception):
                    await link.request({"op": "shutdown"}, timeout=self.request_timeout)

            await asyncio.gather(*(stop_node(l) for l in self.links.values()))
        self._shutdown.set()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        wlock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def send(obj: dict) -> None:
            async with wlock:
                writer.write(_encode(obj))
                with contextlib.suppress(ConnectionError):
                    await writer.drain()

        async def forward(msg: dict) -> None:
            await send(await self._dispatch(msg))

        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    msg = json.loads(line)
                    if not isinstance(msg, dict):
                        raise ValueError("message is not an object")
                except ValueError as exc:
                    await send({"id": None, "ok": False, "code": "bad-request",
                                "error": f"malformed request line: {exc}"})
                    continue
                op = msg.get("op")
                if op in ("submit", "fetch"):
                    task = asyncio.get_running_loop().create_task(forward(msg))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                elif op == "ping":
                    await send({"id": msg.get("id"), "ok": True, "op": "pong",
                                "router": True})
                elif op == "stats":
                    await send(await self._stats_reply(msg.get("id")))
                elif op == "shutdown":
                    if tasks:
                        await asyncio.wait(set(tasks))
                    await send({"id": msg.get("id"), "ok": True})
                    self.request_shutdown()
                    break
                else:
                    await send({"id": msg.get("id"), "ok": False,
                                "code": "bad-request",
                                "error": f"unknown op {op!r}"})
            if tasks:
                await asyncio.wait(set(tasks))
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0, *,
                        handle_signals: bool = False) -> None:
        """Listen for clients on TCP until shutdown (``port=0`` binds an
        ephemeral port, published as :attr:`tcp_address`)."""
        server = await asyncio.start_server(self._handle, host=host, port=port)
        sockname = server.sockets[0].getsockname()
        self.tcp_address = (sockname[0], sockname[1])
        await self._serve(server, handle_signals=handle_signals)

    async def serve_unix(self, path: str, *, handle_signals: bool = False) -> None:
        """Listen for clients on a unix socket until shutdown."""
        server = await asyncio.start_unix_server(self._handle, path=path)
        await self._serve(server, handle_signals=handle_signals)

    async def _serve(self, server: asyncio.AbstractServer, *,
                     handle_signals: bool) -> None:
        loop = asyncio.get_running_loop()
        self.loop = loop
        installed = False
        if handle_signals:
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signal.SIGTERM, self.request_shutdown)
                installed = True
        for name in self.links:
            self._watch(name)
        try:
            await self._shutdown.wait()
        finally:
            if installed:
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.remove_signal_handler(signal.SIGTERM)
            server.close()
            await server.wait_closed()
            await self.aclose()

    async def aclose(self) -> None:
        """Cancel health loops and close every node link (idempotent)."""
        self._shutdown.set()
        for task in self._health_tasks:
            task.cancel()
        for task in self._health_tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._health_tasks.clear()
        await asyncio.gather(*(link.close() for link in self.links.values()))
