"""Fleet membership and the two-tier peer-fill cache client.

**Membership** is a ``name -> address`` map.  :class:`Membership` serves
it from a literal dict or from a JSON *fleet file*::

    {"nodes": {"n0": "127.0.0.1:4101", "n1": "127.0.0.1:4102"}}

The file form is how a spawned fleet bootstraps (each worker binds an
ephemeral port before the full membership is known — the spawner writes
the fleet file once every port is published) and how operators re-shard a
running fleet: the file is re-read on mtime change, so edits take effect
on the next request without restarts.

**Peer fill** is tier 2 of the cluster cache.  Tier 1 is each node's own
:class:`~repro.serve.diskcache.DiskCache`; on a tier-1 miss the node asks
the key's *owning* peer (consistent hash over the current membership) for
its cached bytes before generating.  In steady state the router already
sent the request to the owner, so peer fill is a no-op; after a
membership change or a node restart it is what re-warms the fleet from
itself instead of regenerating — the content-addressed key makes the
fetched bytes trustworthy by construction.  Every failure mode (peer
down, timeout, miss) degrades to ``None``, which the service answers by
generating locally: peer fill can only ever *save* work.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
from collections.abc import Mapping

from ..obs import current_metrics
from ..serve.protocol import ServeClient
from .ring import HashRing, request_key


class Membership:
    """A live ``name -> address`` view of the fleet.

    Static (a literal mapping) or file-backed (re-read when the fleet
    file's mtime changes).  Unreadable or malformed files keep the last
    good view, so a half-written edit never empties the fleet.
    """

    def __init__(self, nodes: Mapping[str, str] | None = None, *,
                 path: str | None = None):
        self._static = dict(nodes) if nodes is not None else None
        self._path = path
        self._cached: dict[str, str] = dict(self._static or {})
        self._mtime: float | None = None
        self._lock = threading.Lock()

    def nodes(self) -> dict[str, str]:
        """The current membership map (a copy; safe to mutate)."""
        if self._path is None:
            return dict(self._cached)
        with self._lock:
            try:
                mtime = os.stat(self._path).st_mtime
            except OSError:
                return dict(self._cached)
            if mtime != self._mtime:
                try:
                    with open(self._path, encoding="utf-8") as f:
                        loaded = json.load(f)
                    parsed = {str(k): str(v)
                              for k, v in dict(loaded.get("nodes", {})).items()}
                except (OSError, ValueError, AttributeError):
                    return dict(self._cached)
                self._cached = parsed
                self._mtime = mtime
            return dict(self._cached)

    def address(self, name: str) -> str | None:
        """The dial address of ``name``, or None when unknown."""
        return self.nodes().get(name)


class PeerFiller:
    """The ``peer_fetch`` callable a cluster node plugs into its
    :class:`~repro.serve.service.GenerationService`.

    On call it rebuilds placement from the *current* membership, walks
    the key's preference list (owner first, then the ring successors the
    key most likely lived on before a re-shard), skips itself, and asks
    up to ``probes`` peers via the wire ``fetch`` op.  Connections are
    cached per peer and dropped on any error; every failure is a miss.
    Thread-safe — the scheduler calls it from its worker threads.
    """

    def __init__(self, membership: Membership, self_name: str, *,
                 part: str = "", probes: int = 2, timeout: float = 5.0):
        self.membership = membership
        self.self_name = self_name
        self.part = part
        self.probes = probes
        self.timeout = timeout
        self._clients: dict[str, ServeClient] = {}
        self._lock = threading.Lock()

    def _client(self, name: str, address: str) -> ServeClient:
        with self._lock:
            client = self._clients.get(name)
            if client is None:
                client = ServeClient(address, timeout=self.timeout)
                self._clients[name] = client
            return client

    def _drop(self, name: str) -> None:
        with self._lock:
            client = self._clients.pop(name, None)
        if client is not None:
            client.close()

    def close(self) -> None:
        """Close every cached peer connection (idempotent)."""
        with self._lock:
            clients, self._clients = dict(self._clients), {}
        for client in clients.values():
            client.close()

    def __call__(self, base_key: str, region_tag: str, digest: str) -> bytes | None:
        """Tier-2 lookup: the owning peer's cached bytes, or None."""
        nodes = self.membership.nodes()
        if len(nodes) < 2:
            return None
        ring = HashRing(nodes)
        key = request_key(self.part, region_tag, digest)
        metrics = current_metrics()
        for name in ring.owners(key, self.probes + 1):
            if name == self.self_name:
                continue
            address = nodes.get(name)
            if address is None:
                continue
            metrics.count("cluster.peer_probes")
            try:
                data = self._client(name, address).fetch(base_key, region_tag, digest)
            except Exception:
                # peer down or protocol failure: drop the connection and
                # let the next probe (or local generation) take over
                with contextlib.suppress(Exception):
                    self._drop(name)
                metrics.count("cluster.peer_fetch_errors")
                continue
            if data is not None:
                metrics.count("cluster.peer_fetch_hits")
                return data
        return None
