"""The distributed generation cluster (``jpg cluster`` / ``jpg loadgen``).

One ``jpg serve`` node already makes repeated work free (persistent
disk cache, coalescing scheduler, pooled backends).  This package scales
that *horizontally* while keeping every byte identical:

* :mod:`repro.cluster.ring` — consistent hashing: each request key
  (device, region footprint, content digest — the disk cache's own
  coordinates) owns exactly one node, so the fleet is a sharded
  content-addressed store and N nodes means N disjoint caches, not N
  copies of one.
* :mod:`repro.cluster.router` — the front-end process: speaks the same
  JSON-lines protocol as a single node, consistent-hashes submits onto
  the fleet, health-checks members (ping + deadline), drains in-flight
  requests off a dying node by failing them over to the re-hashed
  owner, and re-shards automatically on membership change.
* :mod:`repro.cluster.peers` — tier 2 of the cache: on a local disk
  miss a node asks the key's owning peer for its cached bytes (wire
  ``fetch`` op, strictly cache-to-cache) before generating, so a
  re-sharded or restarted fleet warms itself instead of regenerating.
* :mod:`repro.cluster.fleet` — spawn a local loopback fleet of real
  worker processes (ephemeral ports, two-phase fleet-file bootstrap).
* :mod:`repro.cluster.loadgen` — the fleet-scale load harness:
  zipf-skewed synthetic replay, p50/p95/p99 latency, per-tier hit
  ratios, and byte-identity verification against direct generation.

See ``docs/ARCHITECTURE.md`` ("Cluster") for the full design.
"""

from .fleet import LocalFleet
from .loadgen import (
    KeySpec,
    ReplayStats,
    RouterThread,
    Workload,
    build_workload,
    replay,
    run_harness,
    zipf_sequence,
)
from .peers import Membership, PeerFiller
from .ring import HashRing, request_key
from .router import NodeDownError, NodeLink, Router

__all__ = [
    "HashRing",
    "KeySpec",
    "LocalFleet",
    "Membership",
    "NodeDownError",
    "NodeLink",
    "PeerFiller",
    "ReplayStats",
    "Router",
    "RouterThread",
    "Workload",
    "build_workload",
    "replay",
    "request_key",
    "run_harness",
    "zipf_sequence",
]
