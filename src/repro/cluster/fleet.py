"""Spawn and manage a local worker fleet (one process per node).

:class:`LocalFleet` is the bootstrap half of ``jpg cluster --spawn N``
and the loopback fleet behind the load harness and the CI smoke job.  It
solves the two-phase startup problem: each worker must bind before its
address is known (ephemeral ports), but peer fill needs the *full*
membership.  So:

1. every worker starts with ``--tcp 127.0.0.1:0 --port-file <pf>`` and
   publishes its bound port by writing the file atomically;
2. the spawner collects all port files and writes the shared *fleet
   file* (``{"nodes": {name: "host:port"}}``);
3. each worker's :class:`~repro.cluster.peers.Membership` picks the
   fleet file up on mtime change — no restart, no ordering dependency.

Workers are real ``jpg serve`` processes (own interpreter, own
scheduler, own disk cache directory), so a three-node loopback fleet
exercises exactly the code a distributed deployment runs.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

from ..errors import ServeError

#: How the workers re-enter the CLI: ``python -c`` (the package has no
#: ``__main__``), with ``src`` prepended to the child's ``PYTHONPATH``.
_BOOT = "import sys; from repro.core.cli import main; sys.exit(main(sys.argv[1:]))"


def _child_env() -> dict[str, str]:
    """The spawn environment: inherit, but make ``repro`` importable."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


class LocalFleet:
    """N ``jpg serve`` worker processes on loopback, wired for peer fill.

    Use as a context manager; :meth:`stop` SIGTERMs every worker (which
    drains in-flight requests — see
    :meth:`~repro.serve.protocol.JpgServer.request_shutdown`) and
    escalates to SIGKILL only for stragglers.  :meth:`kill` is the chaos
    hook: immediate SIGKILL of one node, no drain, for testing router
    failover.
    """

    def __init__(
        self,
        part: str,
        base_path: str,
        *,
        nodes: int = 3,
        workdir: str | None = None,
        host: str = "127.0.0.1",
        start_timeout: float = 60.0,
        extra_args: list[str] | None = None,
    ):
        """``base_path`` is the base bitstream file every worker serves
        against.  ``workdir`` holds port files, the fleet file, and one
        cache directory per node (a temp dir when omitted, removed on
        :meth:`stop`)."""
        if nodes < 1:
            raise ServeError(f"a fleet needs at least 1 node, got {nodes}")
        self.part = part
        self.base_path = base_path
        self.host = host
        self.start_timeout = start_timeout
        self.extra_args = list(extra_args or [])
        self._own_workdir = workdir is None
        self.workdir = workdir or tempfile.mkdtemp(prefix="jpg-fleet-")
        os.makedirs(self.workdir, exist_ok=True)
        self.fleet_file = os.path.join(self.workdir, "fleet.json")
        self.names = [f"n{i}" for i in range(nodes)]
        self.procs: dict[str, subprocess.Popen] = {}
        self.addresses: dict[str, str] = {}

    def __enter__(self) -> "LocalFleet":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> dict[str, str]:
        """Spawn every worker, collect bound ports, publish the fleet
        file; returns the ``name -> address`` membership map."""
        for name in self.names:
            self._spawn(name)
        deadline = time.monotonic() + self.start_timeout
        for name in self.names:
            port = self._await_port(name, deadline)
            self.addresses[name] = f"{self.host}:{port}"
        payload = json.dumps({"nodes": self.addresses}, indent=2)
        tmp = self.fleet_file + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(payload)
        os.replace(tmp, self.fleet_file)
        return dict(self.addresses)

    def _spawn(self, name: str) -> None:
        cache_dir = os.path.join(self.workdir, f"cache-{name}")
        argv = [
            sys.executable, "-c", _BOOT,
            "serve", "-p", self.part, "--base", self.base_path,
            "--tcp", f"{self.host}:0",
            "--port-file", self._port_file(name),
            "--peers-file", self.fleet_file,
            "--node-id", name,
            "--cache-dir", cache_dir,
            *self.extra_args,
        ]
        self.procs[name] = subprocess.Popen(
            argv, env=_child_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )

    def _port_file(self, name: str) -> str:
        return os.path.join(self.workdir, f"{name}.port")

    def _await_port(self, name: str, deadline: float) -> int:
        path = self._port_file(name)
        while time.monotonic() < deadline:
            proc = self.procs[name]
            if proc.poll() is not None:
                raise ServeError(
                    f"fleet worker {name} exited with {proc.returncode} "
                    "before publishing its port"
                )
            try:
                with open(path, encoding="utf-8") as f:
                    text = f.read().strip()
                if text:
                    return int(text)
            except (OSError, ValueError):
                pass
            time.sleep(0.05)
        raise ServeError(f"fleet worker {name} did not publish a port in time")

    def kill(self, name: str) -> None:
        """Chaos hook: SIGKILL one worker immediately (no drain)."""
        proc = self.procs.get(name)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait()

    def stop(self, *, timeout: float = 10.0) -> None:
        """Drain-stop the fleet: SIGTERM all, wait, SIGKILL stragglers;
        then remove the temp workdir when this fleet created it."""
        for proc in self.procs.values():
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        for proc in self.procs.values():
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(0.1, remaining))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self.procs.clear()
        if self._own_workdir:
            shutil.rmtree(self.workdir, ignore_errors=True)
