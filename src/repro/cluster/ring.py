"""Consistent hashing: stable key placement across a changing fleet.

The cluster's whole premise is that everything below the scheduler
already coalesces and single-flights, so the remaining multiplier is
*placement*: send every request for one key to one node and that node's
disk cache turns the fleet into a sharded content-addressed store.  The
classic tool is a consistent-hash ring (Karger et al.): each node is
hashed onto a circle at ``vnodes`` pseudo-random points, a key is hashed
onto the same circle, and the key's **owner** is the first node point at
or after it.  Adding or removing one node then moves only ``~1/N`` of
the key space — which is exactly what lets the two-tier peer-fill cache
(:mod:`repro.cluster.peers`) re-warm a re-sharded fleet instead of
regenerating everything.

Keys are plain strings.  The canonical request key is
:func:`request_key` — ``device | region footprint | content digest`` —
the same three coordinates the disk cache is addressed by, so the router
and every worker node compute identical placement without coordination.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

from ..errors import ServeError

#: Points each node contributes to the ring; more points = smoother
#: balance at the cost of a (still tiny) sorted array.
DEFAULT_VNODES = 64  # not-a-frame-count


def _ring_hash(text: str) -> int:
    """A stable 64-bit position on the ring (sha256-derived, not
    ``hash()`` — placement must agree across processes and runs)."""
    return int.from_bytes(
        hashlib.sha256(text.encode()).digest()[:8], "big"
    )


def request_key(part: str, region_tag: str, digest: str) -> str:
    """The canonical routing key: ``(device, region footprint,
    content digest)`` — the disk cache's coordinates, stringified."""
    return f"{part}|{region_tag}|{digest}"


class HashRing:
    """A consistent-hash ring over named nodes.

    Membership changes (:meth:`add` / :meth:`remove`) are cheap and move
    a minimal slice of the key space; lookups are ``O(log(N * vnodes))``
    bisections.  Node names are opaque strings (the cluster uses stable
    node *names*, not addresses, so a restarted node on a new port keeps
    its shard).
    """

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ServeError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------------

    @property
    def nodes(self) -> frozenset[str]:
        """The current member set (frozen snapshot)."""
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Join ``node``; a no-op when it is already a member."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            pair = (_ring_hash(f"{node}#{i}"), node)
            bisect.insort(self._points, pair)

    def remove(self, node: str) -> None:
        """Leave ``node``; a no-op when it is not a member."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    def replace(self, nodes: Iterable[str]) -> bool:
        """Reconcile membership to exactly ``nodes``; True if it changed."""
        target = set(nodes)
        changed = False
        for node in self._nodes - target:
            self.remove(node)
            changed = True
        for node in target - self._nodes:
            self.add(node)
            changed = True
        return changed

    # -- placement ------------------------------------------------------------

    def owner(self, key: str) -> str:
        """The node owning ``key`` (raises :class:`ServeError` when empty)."""
        owners = self.owners(key, 1)
        if not owners:
            raise ServeError("hash ring is empty: no nodes to own the key")
        return owners[0]

    def owners(self, key: str, n: int | None = None) -> list[str]:
        """The key's preference list: up to ``n`` *distinct* nodes in ring
        order starting at the owner.  This is the peer-fill probe order —
        the first entry is the owner, the rest are where the key most
        likely lived before the last membership change."""
        if not self._points:
            return []
        want = len(self._nodes) if n is None else min(n, len(self._nodes))
        start = bisect.bisect_left(self._points, (_ring_hash(key), ""))
        out: list[str] = []
        for i in range(len(self._points)):
            node = self._points[(start + i) % len(self._points)][1]
            if node not in out:
                out.append(node)
                if len(out) >= want:
                    break
        return out
