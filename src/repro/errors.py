"""Exception hierarchy for the JPG reproduction.

Every error raised by this package derives from :class:`ReproError` so
applications embedding the library can catch one base class.  The hierarchy
mirrors the major subsystems: device modelling, bitstream transport, the CAD
flow, front-end parsers, and the JPG core itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DeviceError(ReproError):
    """Invalid device, site, wire, or resource reference."""


class UnknownPartError(DeviceError):
    """A part name that is not in the Virtex family catalog."""


class ResourceError(DeviceError):
    """A resource name/coordinate that does not exist on the device."""


class BitstreamError(ReproError):
    """Malformed configuration data."""


class CrcError(BitstreamError):
    """Configuration CRC mismatch detected by the device/config port."""


class SyncError(BitstreamError):
    """Sync word not found or configuration logic out of sync."""


class PacketError(BitstreamError):
    """Malformed type-1/type-2 configuration packet."""


class BitfileError(BitstreamError):
    """Malformed ``.bit`` file header."""


class FlowError(ReproError):
    """A CAD-flow stage (map/place/route/bitgen) failed."""


class TechmapError(FlowError):
    """Technology mapping could not cover the logic network."""


class PackError(FlowError):
    """Slice packing failed (illegal cluster)."""


class PlacementError(FlowError):
    """No legal placement exists (over-capacity or constraint conflict)."""


class RoutingError(FlowError):
    """The router could not complete all nets (unroutable/congestion)."""


class NetlistError(ReproError):
    """Illegal logical netlist construction or reference."""


class ParseError(ReproError):
    """Base class for front-end parse errors (XDL/UCF/options files)."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        loc = ""
        if line is not None:
            loc = f" at line {line}" + (f", col {column}" if column is not None else "")
        super().__init__(f"{message}{loc}")


class XdlParseError(ParseError):
    """Invalid XDL text."""


class UcfParseError(ParseError):
    """Invalid UCF constraint text."""


class ConstraintError(ReproError):
    """Constraints are inconsistent or violated by an implementation."""


class JBitsError(ReproError):
    """Illegal JBits API usage (bad resource, no bitstream loaded, ...)."""


class XhwifError(ReproError):
    """Hardware-interface (board) communication failure."""


class UsageError(ReproError):
    """Invalid invocation: bad arguments, unreadable inputs, malformed
    manifests.  The CLI maps this to a distinct exit code (2) so callers
    can tell "you asked wrong" from "the operation failed"."""


class ExecError(ReproError):
    """Execution-backend failure (pool setup, shared memory, dead worker).

    Raised when the backend itself breaks — e.g. a worker process dies
    mid-batch — as opposed to a per-item generation error, which lands on
    that item's :class:`~repro.batch.engine.BatchItemResult`.  A broken
    pool aborts the whole run loudly; there are no silent partial results."""


class ServeError(ReproError):
    """Generation-service error (scheduler, disk cache, protocol)."""


class QueueFullError(ServeError):
    """The service's bounded job queue rejected a request (backpressure)."""


class ServiceUnavailableError(ServeError):
    """The generation service cannot be reached (no socket, refused)."""


class AnalysisError(ReproError):
    """Static analysis found blocking findings (the pre-deploy gate).

    Carries the blocking :class:`~repro.analyze.Finding` objects so
    callers can render rule ids and locations without re-running the
    analysis."""

    def __init__(self, message: str, findings: object = ()):
        self.findings = list(findings)  # type: ignore[call-overload]
        super().__init__(message)


class JpgError(ReproError):
    """JPG core tool error (project, interface mismatch, merge conflict)."""


class InterfaceMismatchError(JpgError):
    """A replacement module does not preserve the base module's interface."""


class SimulationError(ReproError):
    """Functional simulation failure (contention, undriven logic, ...)."""


class ContentionError(SimulationError):
    """Two drivers actively drive the same routing wire."""
