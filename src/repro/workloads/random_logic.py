"""Random synthesizable designs, for differential fuzzing of the stack.

:func:`random_design` builds a seed-deterministic random netlist: a DAG of
gates over a handful of inputs, a sprinkle of registers (optionally with
clock-enable and reset), and a few outputs.  The integration test suite
pushes these through the entire pipeline (techmap → pack → place → route →
bitgen → config port → frame-decode simulation) and checks every output
against the golden netlist simulator cycle by cycle — the strongest
correctness oracle the package has, because any disagreement anywhere in
the stack surfaces as a wrong output bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist.builder import NetlistBuilder, NetName
from ..netlist.logical import Netlist
from ..utils import make_rng


@dataclass(frozen=True)
class RandomDesignSpec:
    """Shape parameters of a random design."""

    n_inputs: int = 4
    n_gates: int = 18
    n_regs: int = 4
    n_outputs: int = 3
    p_ce: float = 0.3        # probability a register gets a clock enable
    p_sr: float = 0.3        # probability a register gets a reset
    module: str = "rnd"      # hierarchy prefix for the logic


def random_design(seed: int, spec: RandomDesignSpec | None = None) -> Netlist:
    """Build a random design; same seed -> identical netlist."""
    spec = spec or RandomDesignSpec()
    rng = make_rng(seed)
    b = NetlistBuilder(f"random_{seed}")
    clk = b.clock("clk") if spec.n_regs else None

    pool: list[NetName] = [b.input(f"in{i}") for i in range(spec.n_inputs)]
    # dedicated control inputs so CE/SR are externally drivable
    ce_net = b.input("ce") if spec.n_regs and spec.p_ce > 0 else None
    sr_net = b.input("sr") if spec.n_regs and spec.p_sr > 0 else None

    with b.scope(spec.module):
        # registers are created first so gates can use their outputs
        # (feedback); their D inputs are filled in afterwards
        regs: list[NetName] = []
        for i in range(spec.n_regs):
            use_ce = ce_net is not None and rng.random() < spec.p_ce
            use_sr = sr_net is not None and rng.random() < spec.p_sr
            q = b.new_ff(
                clk,
                ce=ce_net if use_ce else None,
                sr=sr_net if use_sr else None,
                init=int(rng.integers(2)),
                name=f"r{i}_reg",
            )
            regs.append(q)
            pool.append(q)

        for i in range(spec.n_gates):
            width = int(rng.integers(1, 5))
            ins = [pool[int(rng.integers(len(pool)))] for _ in range(width)]
            init = int(rng.integers(1, 1 << (1 << width)))  # never constant-0
            pool.append(b.lut(init, *ins, name=f"g{i}"))

        for i, q in enumerate(regs):
            b.drive_ff(q, pool[int(rng.integers(spec.n_inputs, len(pool)))])

    # outputs prefer late (deep) nets
    for i in range(spec.n_outputs):
        idx = len(pool) - 1 - int(rng.integers(min(len(pool), spec.n_gates // 2 + 1)))
        b.output(f"out{i}", pool[idx])
    return b.finish()


def random_stimulus(seed: int, n_inputs: int, cycles: int) -> list[dict[str, int]]:
    """Deterministic random input vectors (includes ce/sr when present)."""
    rng = make_rng(seed ^ 0x5A5A)
    vectors = []
    for _ in range(cycles):
        v = {f"in{i}": int(rng.integers(2)) for i in range(n_inputs)}
        v["ce"] = int(rng.random() < 0.8)   # mostly enabled
        v["sr"] = int(rng.random() < 0.1)   # occasional reset
        vectors.append(v)
    return vectors
