"""Workload generators and multi-region designs for examples/benchmarks."""

from .designs import (
    RegionPlan,
    build_base_netlist,
    figure4_plan,
    flow_cases,
    flow_constraints,
    make_project,
    scale_plan,
    slab_regions,
    version_name,
)
from .generators import GENERATORS, ModuleSpec, attach_module, build_module_netlist

__all__ = [
    "GENERATORS", "ModuleSpec", "RegionPlan", "attach_module",
    "build_base_netlist", "build_module_netlist", "figure4_plan",
    "flow_cases", "flow_constraints", "make_project", "scale_plan",
    "slab_regions", "version_name",
]
