"""Multi-region base designs: the Figure-1 / Figure-4 scenarios.

A :class:`RegionPlan` lists the regions (full-height column slabs), the
module kind living in each, and the variant set available for swapping.
:func:`build_region_plan` slices a device into equal slabs;
:func:`build_base_netlist` assembles the phase-1 base design;
:func:`make_project` runs the whole two-phase methodology and returns a
ready :class:`~repro.core.project.JpgProject` with every version
implemented — the object the examples and the FIG4 benchmark drive.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.project import JpgProject
from ..devices import get_device
from ..errors import JpgError
from ..flow.floorplan import AreaGroup, Constraints, RegionRect
from ..netlist.builder import NetlistBuilder
from ..netlist.logical import Netlist
from .generators import ModuleSpec, attach_module, build_module_netlist


@dataclass(frozen=True)
class RegionPlan:
    """One reconfigurable region and its module variants."""

    name: str
    rect: RegionRect
    base_spec: ModuleSpec
    variants: tuple[ModuleSpec, ...] = ()

    @property
    def n_versions(self) -> int:
        return len(self.variants)


def slab_regions(part: str, names: list[str], *, margin: int = 2) -> list[RegionRect]:
    """Split a device into len(names) equal full-height column slabs,
    keeping ``margin`` columns free at each edge for IO routing."""
    device = get_device(part)
    usable = device.cols - 2 * margin
    n = len(names)
    if usable < n:
        raise JpgError(f"{device.name}: cannot fit {n} slabs")
    width = usable // n
    rects = []
    for i in range(n):
        cmin = margin + i * width
        cmax = cmin + width - 1
        rects.append(RegionRect(0, cmin, device.rows - 1, cmax))
    return rects


def figure4_plan(part: str = "XCV300", width: int = 4) -> list[RegionPlan]:
    """The paper's §4.1 scenario: three regions with 3, 3, and 4 module
    implementations (36 combinations, 10 partial bitstreams)."""
    rects = slab_regions(part, ["r1", "r2", "r3"])
    return [
        RegionPlan(
            "r1", rects[0],
            ModuleSpec("counter", width, "up"),
            (
                ModuleSpec("counter", width, "up"),
                ModuleSpec("counter", width, "down"),
                ModuleSpec("counter", width, "step3"),
            ),
        ),
        RegionPlan(
            "r2", rects[1],
            ModuleSpec("lfsr", width, "taps_a"),
            (
                ModuleSpec("lfsr", width, "taps_a"),
                ModuleSpec("lfsr", width, "taps_b"),
                ModuleSpec("lfsr", width, "taps_c"),
            ),
        ),
        RegionPlan(
            "r3", rects[2],
            ModuleSpec("matcher", width, "1" * width),
            (
                ModuleSpec("matcher", width, "1" * width),
                ModuleSpec("matcher", width, "10" * (width // 2)),
                ModuleSpec("matcher", width, "01" * (width // 2)),
                ModuleSpec("matcher", width, "1" + "0" * (width - 1)),
            ),
        ),
    ]


def scale_plan(part: str = "XCV1000", *, regions: int = 12, variants: int = 9,
               width: int = 4) -> list[RegionPlan]:
    """A large-device stress plan: ``regions`` slabs x ``variants`` module
    versions each (default 12 x 9 = 108 partials on an XCV1000).

    This is the workload axis where parallel backends have room to pay:
    enough independent partials to amortize pool start-up, on a geometry
    (64 x 96 CLBs) whose frame count makes each generation meaningfully
    expensive.  Regions alternate between counter variants (``up``,
    ``down``, ``step2``...) and bit-serial matcher patterns so adjacent
    slabs never share module internals.
    """
    if variants < 1:
        raise JpgError(f"scale_plan needs >= 1 variant, got {variants}")
    names = [f"r{i + 1}" for i in range(regions)]
    rects = slab_regions(part, names)
    counter_variants = ["up", "down"] + [f"step{n}" for n in range(2, variants)]
    matcher_patterns = [
        format(p % (1 << width), f"0{width}b")
        for p in (1, 2, 3, 5, 6, 9, 10, 12, 15, 4, 7, 8, 11, 13, 14)
    ]
    plans = []
    for i, (name, rect) in enumerate(zip(names, rects)):
        if i % 2 == 0:
            specs = tuple(
                ModuleSpec("counter", width, v)
                for v in counter_variants[:variants]
            )
        else:
            specs = tuple(
                ModuleSpec("matcher", width, p)
                for p in matcher_patterns[:variants]
            )
        plans.append(RegionPlan(name, rect, specs[0], specs))
    return plans


def build_base_netlist(name: str, plans: list[RegionPlan], *, clock_port: str = "clk") -> Netlist:
    """Phase 1: the base design — one module per region, shared clock."""
    b = NetlistBuilder(name)
    clk = b.clock(clock_port)
    for plan in plans:
        attach_module(b, plan.name, plan.base_spec, clk)
    return b.finish()


def version_name(spec: ModuleSpec) -> str:
    return spec.variant or spec.kind


def flow_constraints(plans: list[RegionPlan]) -> Constraints:
    """Region constraints for ``plans``, one ``AREA_GROUP`` per region —
    the same floorplan :meth:`JpgProject.constraints` derives."""
    cons = Constraints()
    for plan in plans:
        cons.groups.append(AreaGroup(f"AG_{plan.name}", [f"{plan.name}/*"], plan.rect))
    return cons


def flow_cases() -> list[tuple[str, str, Netlist, Constraints]]:
    """The flow-phase benchmark axis: ``(label, part, netlist, constraints)``
    for the paper's Figure-4 base design and the XCV1000 scale design."""
    fig4 = figure4_plan("XCV100")
    scale = scale_plan("XCV1000", regions=12, variants=9)
    return [
        ("fig4-XCV100", "XCV100",
         build_base_netlist("fig4_base", fig4), flow_constraints(fig4)),
        ("scale-XCV1000", "XCV1000",
         build_base_netlist("scale_base", scale), flow_constraints(scale)),
    ]


def make_project(
    name: str,
    part: str,
    plans: list[RegionPlan],
    *,
    seed: int | None = 0,
    effort: float = 1.0,
    implement_variants: bool = True,
) -> JpgProject:
    """Run the full two-phase methodology for a region plan."""
    project = JpgProject(name, part)
    for plan in plans:
        project.add_region(plan.name, plan.rect)
    base = build_base_netlist(f"{name}_base", plans)
    project.implement_base(base, seed=seed, effort=effort)
    if implement_variants:
        for plan in plans:
            for spec in plan.variants:
                vname = version_name(spec)
                netlist = build_module_netlist(
                    f"{plan.name}_{vname}", plan.name, spec
                )
                project.add_version(plan.name, vname, netlist, seed=seed, effort=effort)
    return project
