"""Parameterized module generators — the designs the evaluation runs on.

Each generator attaches one sub-module to a :class:`NetlistBuilder` under a
region prefix.  Modules are the kinds the reconfigurable-computing
literature of the paper's era used: counters (up/down/step variants),
LFSR pseudo-random generators (tap-set variants), one-hot rotators,
bit-serial pattern matchers (the string-matching application of the
paper's reference [5]), parity/CRC reducers, accumulators, and a 7-segment
decoder.

The crucial property for JPG: **all variants of a kind expose the same
ports**, so replacing one variant with another preserves the module
interface (the paper's §3.2.2 assumption, enforced by ``core.verify``).
Port names are derived from the region name only — never from the variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetlistError
from ..netlist.builder import NetName, NetlistBuilder

#: Registry of generator functions by kind.
GENERATORS: dict[str, "type[ModuleGen]"] = {}


@dataclass(frozen=True)
class ModuleSpec:
    """What to instantiate in a region."""

    kind: str
    width: int = 4
    variant: str = ""
    params: tuple[tuple[str, object], ...] = ()

    def param(self, name: str, default=None):
        return dict(self.params).get(name, default)

    def describe(self) -> str:
        v = f"/{self.variant}" if self.variant else ""
        return f"{self.kind}{v}(w={self.width})"


class ModuleGen:
    """Base class: builds one module's logic + top-level ports."""

    kind = ""

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if cls.kind:
            GENERATORS[cls.kind] = cls

    def __init__(self, spec: ModuleSpec):
        self.spec = spec

    # exposed port lists (filled by build)
    inputs: list[str]
    outputs: list[str]

    def build(self, b: NetlistBuilder, region: str, clk: NetName) -> None:
        raise NotImplementedError


def attach_module(b: NetlistBuilder, region: str, spec: ModuleSpec, clk: NetName) -> ModuleGen:
    """Instantiate a module in ``region`` (cells named ``<region>/...``,
    ports named ``<region>_...``)."""
    try:
        gen_cls = GENERATORS[spec.kind]
    except KeyError:
        raise NetlistError(
            f"unknown module kind {spec.kind!r}; known: {sorted(GENERATORS)}"
        ) from None
    gen = gen_cls(spec)
    gen.inputs, gen.outputs = [], []
    gen.build(b, region, clk)
    return gen


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------


class CounterGen(ModuleGen):
    """Binary counter; variants: "up" (default), "down", "step3" (adds 3)."""

    kind = "counter"

    def build(self, b: NetlistBuilder, region: str, clk: NetName) -> None:
        w = self.spec.width
        variant = self.spec.variant or "up"
        with b.scope(region):
            qs = [b.new_ff(clk, name=f"q{i}_reg") for i in range(w)]
            if variant in ("up", "down"):
                bits = [b.not_(q) for q in qs] if variant == "down" else qs
                carry = b.const(1)
                for i in range(w):
                    b.drive_ff(qs[i], b.xor_(qs[i], carry))
                    if i < w - 1:
                        carry = b.and_(bits[i], carry)
            elif variant.startswith("step"):
                step = int(variant[4:])
                step_nets = [b.const((step >> i) & 1) for i in range(w)]
                total = b.add(qs, step_nets)
                for i in range(w):
                    b.drive_ff(qs[i], total[i])
            else:
                raise NetlistError(f"counter variant {variant!r} unknown")
        for i, q in enumerate(qs):
            port = f"{region}_o{i}"
            b.output(port, q)
            self.outputs.append(port)


class LfsrGen(ModuleGen):
    """Fibonacci LFSR; the variant names the tap set ("taps_a"/"taps_b")."""

    kind = "lfsr"

    TAPS = {
        "taps_a": (0, 1),        # x^w + ... minimal default
        "taps_b": (0, 2),
        "taps_c": (0, 1, 2, 3),
    }

    def build(self, b: NetlistBuilder, region: str, clk: NetName) -> None:
        w = self.spec.width
        taps = self.TAPS.get(self.spec.variant or "taps_a")
        if taps is None:
            raise NetlistError(f"lfsr variant {self.spec.variant!r} unknown")
        with b.scope(region):
            # seed 1 in the low register so the LFSR never starts stuck at 0
            qs = [b.new_ff(clk, init=1 if i == 0 else 0, name=f"s{i}_reg") for i in range(w)]
            fb = b.xor_n([qs[t] for t in taps if t < w])
            b.drive_ff(qs[0], fb)
            for i in range(1, w):
                b.drive_ff(qs[i], qs[i - 1])
        for i, q in enumerate(qs):
            port = f"{region}_o{i}"
            b.output(port, q)
            self.outputs.append(port)


class RingGen(ModuleGen):
    """One-hot rotator; variants: "left" (default), "right"."""

    kind = "ring"

    def build(self, b: NetlistBuilder, region: str, clk: NetName) -> None:
        w = self.spec.width
        variant = self.spec.variant or "left"
        with b.scope(region):
            qs = [b.new_ff(clk, init=1 if i == 0 else 0, name=f"r{i}_reg") for i in range(w)]
            for i in range(w):
                src = qs[(i - 1) % w] if variant == "left" else qs[(i + 1) % w]
                b.drive_ff(qs[i], b.buf(src))
        for i, q in enumerate(qs):
            port = f"{region}_o{i}"
            b.output(port, q)
            self.outputs.append(port)


class MatcherGen(ModuleGen):
    """Bit-serial pattern matcher (the string-matching RC application).

    Shifts ``<region>_din`` through a ``width``-deep register chain and
    raises ``<region>_match`` when the window equals the variant's bit
    pattern.  Reconfiguring the region changes the pattern — the classic
    use of partial reconfiguration in the paper's reference [5].
    """

    kind = "matcher"

    def build(self, b: NetlistBuilder, region: str, clk: NetName) -> None:
        w = self.spec.width
        pattern = self.spec.variant or "1" * w
        if len(pattern) != w or any(ch not in "01" for ch in pattern):
            raise NetlistError(
                f"matcher pattern {pattern!r} must be {w} bits of 0/1"
            )
        din = b.input(f"{region}_din")
        self.inputs.append(f"{region}_din")
        with b.scope(region):
            stage = din
            taps: list[NetName] = []
            for i in range(w):
                stage = b.reg(stage, clk, name=f"sh{i}_reg")
                taps.append(stage)
            # taps[0] is the most recent bit; pattern[0] matches the oldest
            terms = []
            for i, tap in enumerate(reversed(taps)):
                want = pattern[i]
                terms.append(tap if want == "1" else b.not_(tap))
            match = b.and_n(terms)
            match_q = b.reg(match, clk, name="match_reg")
        b.output(f"{region}_match", match_q)
        self.outputs.append(f"{region}_match")


class AccumulatorGen(ModuleGen):
    """Accumulates a parallel input every cycle; variant "sub" subtracts
    (two's-complement add of the inverted input with carry-in 1)."""

    kind = "accumulator"

    def build(self, b: NetlistBuilder, region: str, clk: NetName) -> None:
        w = self.spec.width
        variant = self.spec.variant or "add"
        ins = []
        for i in range(w):
            port = f"{region}_in{i}"
            ins.append(b.input(port))
            self.inputs.append(port)
        with b.scope(region):
            qs = [b.new_ff(clk, name=f"acc{i}_reg") for i in range(w)]
            if variant == "sub":
                addend = [b.not_(x) for x in ins]
                total = b.add(qs, addend, cin=b.const(1))
            else:
                total = b.add(qs, ins)
            for i in range(w):
                b.drive_ff(qs[i], total[i])
        for i, q in enumerate(qs):
            port = f"{region}_o{i}"
            b.output(port, q)
            self.outputs.append(port)


class ParityGen(ModuleGen):
    """Registered parity tree over a parallel input; variant "odd" inverts."""

    kind = "parity"

    def build(self, b: NetlistBuilder, region: str, clk: NetName) -> None:
        w = self.spec.width
        ins = []
        for i in range(w):
            port = f"{region}_in{i}"
            ins.append(b.input(port))
            self.inputs.append(port)
        with b.scope(region):
            p = b.xor_n(ins)
            if (self.spec.variant or "even") == "odd":
                p = b.not_(p)
            q = b.reg(p, clk, name="par_reg")
        b.output(f"{region}_p", q)
        self.outputs.append(f"{region}_p")


class SevenSegGen(ModuleGen):
    """4-bit to 7-segment decoder; variant "hex" extends to A-F, the
    default blanks codes above 9."""

    kind = "sevenseg"

    SEGMENTS = {
        0: 0x3F, 1: 0x06, 2: 0x5B, 3: 0x4F, 4: 0x66, 5: 0x6D, 6: 0x7D,
        7: 0x07, 8: 0x7F, 9: 0x6F, 10: 0x77, 11: 0x7C, 12: 0x39,
        13: 0x5E, 14: 0x79, 15: 0x71,
    }

    def build(self, b: NetlistBuilder, region: str, clk: NetName) -> None:
        hex_mode = (self.spec.variant or "dec") == "hex"
        ins = []
        for i in range(4):
            port = f"{region}_in{i}"
            ins.append(b.input(port))
            self.inputs.append(port)
        with b.scope(region):
            seg_nets = []
            for seg in range(7):
                init = 0
                for code in range(16):
                    value = self.SEGMENTS[code] if (hex_mode or code < 10) else 0
                    if (value >> seg) & 1:
                        init |= 1 << code
                seg_nets.append(b.lut(init, *ins, name=f"seg{seg}"))
        for seg, net in enumerate(seg_nets):
            port = f"{region}_seg{seg}"
            b.output(port, net)
            self.outputs.append(port)


def build_module_netlist(
    name: str, region: str, spec: ModuleSpec, *, clock_port: str = "clk"
):
    """A standalone phase-2 project: just this module, same ports as the
    base design uses for its region."""
    b = NetlistBuilder(name)
    clk = b.clock(clock_port)
    attach_module(b, region, spec, clk)
    return b.finish()
