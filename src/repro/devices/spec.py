"""Declarative device geometry: :class:`GeometrySpec`.

A device is *data*, not code: one :class:`GeometrySpec` names everything
:class:`~repro.devices.geometry.Geometry` needs to lay out the
configuration address space — CLB array size, which edges carry block-RAM
columns (and in what major-address order), the frame count of every
column kind, and the IDCODE.  The shipped catalog lives in
``data/families.json`` next to this module; :func:`load_spec_file` parses
it and :mod:`repro.devices.family` registers the result, so adding a part
(or a deliberately-irregular variant) is a data edit, not a code change.

Validation happens at construction: a spec that passes
:meth:`GeometrySpec.__post_init__` yields a well-formed geometry — every
resource coordinate maps to a unique (frame, bit) and back, the FAR
encoding can address every frame, and BRAM content interleaving fits the
frame payload.  The seeded fuzzer (:mod:`repro.devices.fuzz`) leans on
this: it draws random field values and the constructor is the oracle for
which draws are legal.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any

from ..errors import DeviceError

#: Config bits contributed by one CLB row to one frame of its column.
BITS_PER_ROW = 18

#: Classic Virtex minor-frame counts per column kind (spec defaults).
CLOCK_FRAMES = 8
CLB_FRAMES = 48
IOB_FRAMES = 54
BRAM_INT_FRAMES = 27
BRAM_CONTENT_FRAMES = 64

#: Bits per block RAM (a RAMB4: 4 kbit, spanning 4 CLB rows).
BRAM_BITS = 4096

#: The FAR's minor field is 9 bits, so no column may exceed this.
MAX_COLUMN_FRAMES = 511

_VALID_SIDES = ("L", "R")


@dataclass(frozen=True)
class GeometrySpec:
    """Declarative description of one device's configuration geometry.

    The classic Virtex catalog uses the defaults for everything except
    the array size and IDCODE; irregular variants and fuzzer-generated
    devices override frame counts and BRAM placement freely.  ``family``
    tags where a spec came from: ``"virtex"`` (the datasheet catalog),
    ``"variant"`` (shipped irregular geometries), or ``"fuzz"`` (seeded
    random devices).
    """

    name: str             # canonical part name, e.g. "XCV300"
    clb_rows: int         # CLB array height
    clb_cols: int         # CLB array width
    idcode: int           # device identification code (readback/IDCODE reg)
    #: Edges carrying a BRAM column pair, in major-address order.
    bram_sides: tuple[str, ...] = ("L", "R")
    clock_frames: int = CLOCK_FRAMES
    clb_frames: int = CLB_FRAMES
    iob_frames: int = IOB_FRAMES
    bram_int_frames: int = BRAM_INT_FRAMES
    bram_content_frames: int = BRAM_CONTENT_FRAMES
    family: str = "virtex"
    speed_grades: tuple[str, ...] = ("-4", "-5", "-6")

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.strip().upper():
            raise DeviceError(f"spec name {self.name!r} must be non-empty uppercase")
        if self.clb_rows < 1 or self.clb_cols < 1:
            raise DeviceError(
                f"{self.name}: CLB array {self.clb_rows}x{self.clb_cols} is empty"
            )
        if not 0 <= self.idcode < 1 << 32:
            raise DeviceError(f"{self.name}: IDCODE 0x{self.idcode:x} is not 32-bit")
        sides = tuple(self.bram_sides)
        if len(set(sides)) != len(sides) or any(s not in _VALID_SIDES for s in sides):
            raise DeviceError(
                f"{self.name}: bram_sides {sides!r} must be distinct L/R edges"
            )
        object.__setattr__(self, "bram_sides", sides)
        for label, count in (
            ("clock_frames", self.clock_frames),
            ("clb_frames", self.clb_frames),
            ("iob_frames", self.iob_frames),
            ("bram_int_frames", self.bram_int_frames),
            ("bram_content_frames", self.bram_content_frames),
        ):
            if not 1 <= count <= MAX_COLUMN_FRAMES:
                raise DeviceError(
                    f"{self.name}: {label}={count} outside 1..{MAX_COLUMN_FRAMES} "
                    f"(the FAR minor field is 9 bits)"
                )
        # the CLB resource plane (LUTs/FFs/muxes/PIPs) occupies 48 minors;
        # a spec may carry spare minors but never fewer
        if self.clb_frames < CLB_FRAMES:
            raise DeviceError(
                f"{self.name}: clb_frames={self.clb_frames} cannot hold the "
                f"{CLB_FRAMES}-minor CLB resource plane"
            )
        if sides:
            if BRAM_BITS % self.bram_content_frames:
                raise DeviceError(
                    f"{self.name}: bram_content_frames={self.bram_content_frames} "
                    f"does not divide the {BRAM_BITS}-bit block size"
                )
            bits_per_frame = BRAM_BITS // self.bram_content_frames
            frame_bits = BITS_PER_ROW * (self.clb_rows + 2)
            blocks = self.clb_rows // 4
            if blocks * bits_per_frame > frame_bits:
                raise DeviceError(
                    f"{self.name}: {blocks} BRAM block(s) x {bits_per_frame} "
                    f"bits/frame exceed the {frame_bits}-bit frame payload"
                )

    # -- derived capacity (the datasheet numbers) ----------------------------

    @property
    def bram_cols(self) -> int:
        """Number of BRAM column pairs (one interconnect + one content)."""
        return len(self.bram_sides)

    @property
    def slices(self) -> int:
        """Total logic slices (2 per CLB)."""
        return self.clb_rows * self.clb_cols * 2

    @property
    def lut4s(self) -> int:
        """Total 4-input LUTs (2 per slice)."""
        return self.slices * 2

    @property
    def bram_blocks(self) -> int:
        """Block RAMs: one per 4 CLB rows per BRAM column."""
        return (self.clb_rows // 4) * self.bram_cols

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (IDCODE as hex, tuples as lists)."""
        return {
            "name": self.name,
            "clb_rows": self.clb_rows,
            "clb_cols": self.clb_cols,
            "idcode": f"0x{self.idcode:08x}",
            "bram_sides": list(self.bram_sides),
            "clock_frames": self.clock_frames,
            "clb_frames": self.clb_frames,
            "iob_frames": self.iob_frames,
            "bram_int_frames": self.bram_int_frames,
            "bram_content_frames": self.bram_content_frames,
            "family": self.family,
            "speed_grades": list(self.speed_grades),
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "GeometrySpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        extra = set(raw) - known
        if extra:
            raise DeviceError(
                f"spec {raw.get('name', '?')!r}: unknown field(s) {sorted(extra)}"
            )
        kwargs = dict(raw)
        idcode = kwargs.get("idcode")
        if isinstance(idcode, str):
            kwargs["idcode"] = int(idcode, 0)
        for key in ("bram_sides", "speed_grades"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise DeviceError(f"spec {raw.get('name', '?')!r}: {exc}") from None

    def with_name(self, name: str) -> "GeometrySpec":
        return replace(self, name=name)


def load_spec_file(path: str) -> list[GeometrySpec]:
    """Parse a ``families.json`` catalog file into specs."""
    import json

    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    entries = doc.get("families") if isinstance(doc, dict) else None
    if not isinstance(entries, list):
        raise DeviceError(f"{path}: expected an object with a 'families' list")
    return [GeometrySpec.from_dict(entry) for entry in entries]
