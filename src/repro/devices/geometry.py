"""Device geometry: tile grid, sites, and configuration-column layout.

A Virtex-class device is configured column-at-a-time.  The configuration
address space is organised as *columns* of *frames*:

* one clock column (8 frames),
* one column of 48 frames per CLB column,
* two IOB columns of 54 frames (left and right edges),
* per BRAM column: an interconnect column (27 frames) and a content
  column (64 frames).

Each frame spans the full height of the device.  A CLB row contributes 18
bits to every frame of its column; an extra 18-bit region above the first
row and below the last row carries the top/bottom IOB configuration (this
is how the real device folds top/bottom IOBs into CLB columns).

Frame length in 32-bit words is ``ceil(18 * (rows + 2) / 32) + 1`` — the
trailing word is padding, as in the real format (the FLR register is
programmed with ``words - 1``).

Deviation from real silicon (documented in DESIGN.md): real Virtex numbers
major columns centre-out starting at the clock column; we use a simpler
left-to-right order (clock first, then CLB columns 0..C-1, then IOB, then
BRAM).  Nothing downstream depends on the physical interleave, only on the
order being a bijection, which :meth:`Geometry.columns` defines once.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from functools import cached_property

from ..errors import DeviceError
from .family import PartInfo, part_info
from .spec import (  # noqa: F401  (re-exported: historical home of these)
    BITS_PER_ROW,
    BRAM_BITS,
    BRAM_CONTENT_FRAMES,
    BRAM_INT_FRAMES,
    CLB_FRAMES,
    CLOCK_FRAMES,
    IOB_FRAMES,
    GeometrySpec,
)

#: Number of IOB sites per edge position (per CLB row on the left/right
#: edges; per CLB column on the top/bottom edges).
IOBS_PER_EDGE_TILE = 2

#: Number of global clock lines (and clock buffers).
NUM_GCLK = 4


class ColumnKind(enum.Enum):
    """Kinds of configuration columns, with their classic frame counts."""

    CLOCK = "clock"
    CLB = "clb"
    IOB = "iob"
    BRAM_INT = "bram_int"
    BRAM_CONTENT = "bram_content"

    @property
    def frames(self) -> int:
        """Classic Virtex frame count (specs may override per device)."""
        return {
            ColumnKind.CLOCK: CLOCK_FRAMES,
            ColumnKind.CLB: CLB_FRAMES,
            ColumnKind.IOB: IOB_FRAMES,
            ColumnKind.BRAM_INT: BRAM_INT_FRAMES,
            ColumnKind.BRAM_CONTENT: BRAM_CONTENT_FRAMES,
        }[self]

    def spec_frames(self, spec: GeometrySpec) -> int:
        """Frame count of this column kind on one device."""
        return {
            ColumnKind.CLOCK: spec.clock_frames,
            ColumnKind.CLB: spec.clb_frames,
            ColumnKind.IOB: spec.iob_frames,
            ColumnKind.BRAM_INT: spec.bram_int_frames,
            ColumnKind.BRAM_CONTENT: spec.bram_content_frames,
        }[self]


class Side(enum.Enum):
    """Device edge, used to name IOB sites."""

    LEFT = "L"
    RIGHT = "R"
    TOP = "T"
    BOTTOM = "B"


@dataclass(frozen=True)
class ConfigColumn:
    """One column of configuration frames."""

    major: int                 # major address (position in FAR order)
    kind: ColumnKind
    clb_col: int | None = None  # for CLB columns: 0-based fabric column
    side: Side | None = None    # for IOB/BRAM columns: which edge
    frames: int = 0             # minor-frame count (0 = classic kind default)

    def __post_init__(self) -> None:
        if self.frames <= 0:
            object.__setattr__(self, "frames", self.kind.frames)


@dataclass(frozen=True)
class IobSite:
    """One IO block site on the device edge."""

    side: Side
    position: int   # CLB row (left/right) or CLB column (top/bottom)
    index: int      # 0..IOBS_PER_EDGE_TILE-1

    @property
    def name(self) -> str:
        axis = "R" if self.side in (Side.LEFT, Side.RIGHT) else "C"
        return f"IOB_{self.side.value}_{axis}{self.position + 1}_{self.index}"


#: Content bits each block contributes per content frame on the classic
#: 64-frame interleave (specs with other frame counts scale accordingly).
BRAM_BITS_PER_FRAME = BRAM_BITS // BRAM_CONTENT_FRAMES


@dataclass(frozen=True)
class BramSite:
    """One block RAM site (column side + block index, top to bottom)."""

    side: Side
    block: int

    @property
    def name(self) -> str:
        return f"BRAM_{self.side.value}{self.block}"


_BRAM_RE = re.compile(r"^BRAM_([LR])(\d+)$")


def parse_bram_site(name: str) -> BramSite:
    m = _BRAM_RE.match(name)
    if not m:
        raise DeviceError(f"not a BRAM site name: {name!r}")
    return BramSite(Side(m.group(1)), int(m.group(2)))


_SITE_RE = re.compile(r"^CLB_R(\d+)C(\d+)$")
_SLICE_RE = re.compile(r"^CLB_R(\d+)C(\d+)\.S([01])$")
_RC_RE = re.compile(r"^R(\d+)C(\d+)$")
_IOB_RE = re.compile(r"^IOB_([LRTB])_[RC](\d+)_(\d+)$")


def clb_site_name(row: int, col: int) -> str:
    """Site name for a 0-based (row, col), e.g. ``CLB_R3C23`` (1-based)."""
    return f"CLB_R{row + 1}C{col + 1}"


def slice_site_name(row: int, col: int, slice_index: int) -> str:
    """Full slice location, e.g. ``CLB_R3C23.S0`` (the paper's format)."""
    return f"{clb_site_name(row, col)}.S{slice_index}"


def parse_clb_site(name: str) -> tuple[int, int]:
    """Parse ``CLB_R3C23`` (or bare ``R3C23``) into 0-based (row, col)."""
    m = _SITE_RE.match(name) or _RC_RE.match(name)
    if not m:
        raise DeviceError(f"not a CLB site name: {name!r}")
    return int(m.group(1)) - 1, int(m.group(2)) - 1


def parse_slice_site(name: str) -> tuple[int, int, int]:
    """Parse ``CLB_R3C23.S0`` into 0-based (row, col, slice)."""
    m = _SLICE_RE.match(name)
    if not m:
        raise DeviceError(f"not a slice site name: {name!r}")
    return int(m.group(1)) - 1, int(m.group(2)) - 1, int(m.group(3))


def parse_iob_site(name: str) -> IobSite:
    """Parse an IOB site name back into an :class:`IobSite`."""
    m = _IOB_RE.match(name)
    if not m:
        raise DeviceError(f"not an IOB site name: {name!r}")
    side = Side(m.group(1))
    return IobSite(side, int(m.group(2)) - 1, int(m.group(3)))


class Geometry:
    """Frame-address geometry of one part.

    Provides the bijections the whole package relies on:

    * ``(major, minor)`` config-frame address <-> linear frame index,
    * CLB fabric column <-> major address,
    * CLB row <-> bit offset within a frame.
    """

    def __init__(self, part: PartInfo | str):
        self.part = part if isinstance(part, PartInfo) else part_info(part)
        self.rows = self.part.clb_rows
        self.cols = self.part.clb_cols

    @property
    def spec(self) -> GeometrySpec:
        """The declarative spec this geometry realizes (= :attr:`part`)."""
        return self.part

    # ----- column layout ---------------------------------------------------

    @cached_property
    def _bram_sides(self) -> tuple[Side, ...]:
        return tuple(Side(s) for s in self.part.bram_sides)

    @cached_property
    def columns(self) -> tuple[ConfigColumn, ...]:
        """All configuration columns in major-address order.

        Layout comes entirely from the spec: clock first, then the CLB
        columns left to right, the two IOB edge columns, then one BRAM
        interconnect and one BRAM content column per spec'd edge, in the
        spec's ``bram_sides`` order.  Frame counts are the spec's.
        """
        spec = self.part

        def col(kind: ColumnKind, **kw) -> ConfigColumn:
            return ConfigColumn(len(cols), kind, frames=kind.spec_frames(spec), **kw)

        cols: list[ConfigColumn] = []
        cols.append(col(ColumnKind.CLOCK))
        for c in range(self.cols):
            cols.append(col(ColumnKind.CLB, clb_col=c))
        for side in (Side.LEFT, Side.RIGHT):
            cols.append(col(ColumnKind.IOB, side=side))
        for side in self._bram_sides:
            cols.append(col(ColumnKind.BRAM_INT, side=side))
        for side in self._bram_sides:
            cols.append(col(ColumnKind.BRAM_CONTENT, side=side))
        return tuple(cols)

    def column(self, major: int) -> ConfigColumn:
        try:
            return self.columns[major]
        except IndexError:
            raise DeviceError(
                f"major address {major} out of range (device has "
                f"{len(self.columns)} config columns)"
            ) from None

    def major_of_clb_col(self, clb_col: int) -> int:
        """Major address of a 0-based CLB fabric column."""
        if not 0 <= clb_col < self.cols:
            raise DeviceError(f"CLB column {clb_col} out of range 0..{self.cols - 1}")
        return 1 + clb_col

    def major_of_iob(self, side: Side) -> int:
        """Major address of the left or right IOB column."""
        if side not in (Side.LEFT, Side.RIGHT):
            raise DeviceError(f"IOB config columns exist only on L/R edges, not {side}")
        return 1 + self.cols + (0 if side is Side.LEFT else 1)

    # ----- frame sizes and linear indexing ---------------------------------

    @cached_property
    def frame_bits(self) -> int:
        """Payload bits per frame (18 bits per CLB row plus top/bottom)."""
        return BITS_PER_ROW * (self.rows + 2)

    @cached_property
    def frame_words(self) -> int:
        """Frame length in 32-bit words, including one trailing pad word."""
        return (self.frame_bits + 31) // 32 + 1

    @cached_property
    def flr_value(self) -> int:
        """Value programmed into the FLR (frame length) register."""
        return self.frame_words - 1

    @cached_property
    def _frame_bases(self) -> tuple[int, ...]:
        bases, acc = [], 0
        for col in self.columns:
            bases.append(acc)
            acc += col.frames
        bases.append(acc)
        return tuple(bases)

    @property
    def total_frames(self) -> int:
        return self._frame_bases[-1]

    def frame_base(self, major: int) -> int:
        """Linear index of frame (major, minor=0)."""
        self.column(major)  # validate
        return self._frame_bases[major]

    def frame_index(self, major: int, minor: int) -> int:
        """Linear index of frame (major, minor)."""
        col = self.column(major)
        if not 0 <= minor < col.frames:
            raise DeviceError(
                f"minor {minor} out of range for {col.kind.value} column "
                f"major {major} ({col.frames} frames)"
            )
        return self._frame_bases[major] + minor

    def frame_address(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`frame_index` -> (major, minor)."""
        if not 0 <= index < self.total_frames:
            raise DeviceError(f"frame index {index} out of range 0..{self.total_frames - 1}")
        # columns is small (~dozens); linear scan is fine and obvious.
        for major, col in enumerate(self.columns):
            base = self._frame_bases[major]
            if index < base + col.frames:
                return major, index - base
        raise AssertionError("unreachable")

    # ----- device-relative address algebra ----------------------------------

    def clb_col_of_major(self, major: int) -> int | None:
        """Fabric column of a CLB config column (None for other kinds)."""
        return self.column(major).clb_col

    def symbolic_address(self, index: int) -> tuple[str, int | str | None, int]:
        """Device-relative address of a linear frame: ``(kind, position,
        minor)``.

        ``position`` is the 0-based fabric column for CLB columns, the
        edge letter (``"L"``/``"R"``) for IOB and BRAM columns, and None
        for the clock column.  Unlike the absolute FAR major, this key is
        stable across devices of one spec family and is what the semantic
        analyses (:mod:`repro.analyze.semantics`) compare.
        """
        major, minor = self.frame_address(index)
        col = self.column(major)
        if col.kind is ColumnKind.CLB:
            position: int | str | None = col.clb_col
        elif col.side is not None:
            position = col.side.value
        else:
            position = None
        return col.kind.value, position, minor

    def shift_clb_major(self, major: int, delta: int) -> int:
        """Major address of the CLB column ``delta`` fabric columns over.

        Only CLB columns participate in the relocation algebra: every CLB
        column of one device has the same frame count (the spec's
        ``clb_frames``), so shifting the major leaves the minor untouched.
        """
        col = self.column(major)
        if col.kind is not ColumnKind.CLB:
            raise DeviceError(
                f"major {major} is a {col.kind.value} column; only CLB "
                f"columns can be shifted"
            )
        assert col.clb_col is not None
        return self.major_of_clb_col(col.clb_col + delta)

    # ----- within-frame bit offsets ----------------------------------------

    def row_bit_offset(self, row: int) -> int:
        """Bit offset of a CLB row's 18-bit region within a frame."""
        if not 0 <= row < self.rows:
            raise DeviceError(f"CLB row {row} out of range 0..{self.rows - 1}")
        return BITS_PER_ROW * (row + 1)

    @property
    def top_bit_offset(self) -> int:
        """Bit offset of the top IOB region (18 bits above row 0)."""
        return 0

    @property
    def bottom_bit_offset(self) -> int:
        """Bit offset of the bottom IOB region."""
        return BITS_PER_ROW * (self.rows + 1)

    # ----- sites ------------------------------------------------------------

    def check_tile(self, row: int, col: int) -> None:
        """Validate a 0-based CLB tile coordinate."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise DeviceError(
                f"tile (row={row}, col={col}) outside {self.part.name} array "
                f"{self.rows}x{self.cols}"
            )

    def clb_sites(self):
        """Iterate all (row, col) CLB tiles."""
        for r in range(self.rows):
            for c in range(self.cols):
                yield r, c

    @cached_property
    def iob_sites(self) -> tuple[IobSite, ...]:
        """All IOB sites, edge by edge."""
        sites: list[IobSite] = []
        for side in (Side.LEFT, Side.RIGHT):
            for r in range(self.rows):
                for i in range(IOBS_PER_EDGE_TILE):
                    sites.append(IobSite(side, r, i))
        for side in (Side.TOP, Side.BOTTOM):
            for c in range(self.cols):
                for i in range(IOBS_PER_EDGE_TILE):
                    sites.append(IobSite(side, c, i))
        return tuple(sites)

    def iob_tile(self, site: IobSite) -> tuple[int, int]:
        """Fabric tile an IOB site injects into / taps from."""
        if site.side is Side.LEFT:
            return site.position, 0
        if site.side is Side.RIGHT:
            return site.position, self.cols - 1
        if site.side is Side.TOP:
            return 0, site.position
        return self.rows - 1, site.position

    def io_wire_index(self, site: IobSite) -> int:
        """Index of the ``IO_IN``/``IO_OUT`` tile wires this site binds to.

        Left/right sites use wires 0..1, top/bottom sites 2..3, so corner
        tiles (which host sites from two edges) never share a wire.
        """
        base = 0 if site.side in (Side.LEFT, Side.RIGHT) else IOBS_PER_EDGE_TILE
        return base + site.index

    def tile_iobs(self, row: int, col: int) -> tuple[IobSite, ...]:
        """IOB sites attached to a fabric tile (edge tiles only)."""
        self.check_tile(row, col)
        out: list[IobSite] = []
        if col == 0:
            out += [IobSite(Side.LEFT, row, i) for i in range(IOBS_PER_EDGE_TILE)]
        if col == self.cols - 1:
            out += [IobSite(Side.RIGHT, row, i) for i in range(IOBS_PER_EDGE_TILE)]
        if row == 0:
            out += [IobSite(Side.TOP, col, i) for i in range(IOBS_PER_EDGE_TILE)]
        if row == self.rows - 1:
            out += [IobSite(Side.BOTTOM, col, i) for i in range(IOBS_PER_EDGE_TILE)]
        return tuple(out)

    # ----- block RAM ----------------------------------------------------------

    @property
    def bram_blocks_per_column(self) -> int:
        """Block RAMs per BRAM column (one per 4 CLB rows)."""
        return self.rows // 4

    @cached_property
    def bram_sites(self) -> tuple[BramSite, ...]:
        return tuple(
            BramSite(side, b)
            for side in self._bram_sides
            for b in range(self.bram_blocks_per_column)
        )

    @property
    def bram_bits_per_frame(self) -> int:
        """Content bits each block contributes per content-column frame."""
        return BRAM_BITS // self.part.bram_content_frames

    def major_of_bram_content(self, side: Side) -> int:
        """Major address of a side's BRAM *content* column."""
        for col in self.columns:
            if col.kind is ColumnKind.BRAM_CONTENT and col.side is side:
                return col.major
        raise DeviceError(f"no BRAM content column on side {side}")

    def bram_bit_location(self, site: BramSite, bit: int) -> tuple[int, int]:
        """(frame, bit offset) of one content bit of a block RAM.

        Each of the content column's N frames holds ``4096 / N`` bits per
        block: frame ``bit // (4096/N)``, at offset ``block * (4096/N) +
        bit % (4096/N)`` — the interleave that makes one block's update
        touch every content frame, as on the real part (classic N = 64).
        """
        if not 0 <= bit < BRAM_BITS:
            raise DeviceError(f"BRAM bit {bit} out of range 0..{BRAM_BITS - 1}")
        if site.block >= self.bram_blocks_per_column:
            raise DeviceError(f"{site.name}: block out of range on {self.part.name}")
        per_frame = self.bram_bits_per_frame
        minor, lane = divmod(bit, per_frame)
        offset = site.block * per_frame + lane
        if offset >= self.frame_bits:
            raise DeviceError(
                f"{site.name}: content does not fit the frame "
                f"({offset} >= {self.frame_bits})"
            )
        return self.frame_base(self.major_of_bram_content(site.side)) + minor, offset

    # ----- size accounting ---------------------------------------------------

    def config_payload_words(self) -> int:
        """Words of raw frame data in a full configuration (no packets)."""
        return self.total_frames * self.frame_words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Geometry({self.part.name}: {self.rows}x{self.cols} CLBs, "
            f"{self.total_frames} frames x {self.frame_words} words)"
        )
