"""Virtex-class device model: parts, geometry, resources, routing fabric.

Public entry point: :func:`get_device` / :class:`Device`.  Device
geometries are declarative (:class:`GeometrySpec` loaded from
``data/families.json``); :func:`random_device` generates seeded valid
geometries for fuzzing.
"""

from .device import Device, get_device
from .family import (
    PartInfo,
    normalize_part_name,
    packaged_name,
    part_by_idcode,
    part_info,
    part_names,
    register_spec,
    spec_names,
    variant_names,
)
from .fuzz import random_device, random_spec
from .geometry import (
    BITS_PER_ROW,
    CLB_FRAMES,
    NUM_GCLK,
    ColumnKind,
    ConfigColumn,
    Geometry,
    IobSite,
    Side,
    clb_site_name,
    parse_clb_site,
    parse_iob_site,
    parse_slice_site,
    slice_site_name,
)
from .resources import SLICE, BitCoord, Field, field, pip_coord, pip_index_of
from .spec import GeometrySpec, load_spec_file

__all__ = [
    "BITS_PER_ROW", "BitCoord", "CLB_FRAMES", "ColumnKind", "ConfigColumn",
    "Device", "Field", "Geometry", "GeometrySpec", "IobSite", "NUM_GCLK",
    "PartInfo", "SLICE", "Side", "clb_site_name", "field", "get_device",
    "load_spec_file", "normalize_part_name", "packaged_name",
    "parse_clb_site",
    "parse_iob_site", "parse_slice_site", "part_by_idcode", "part_info",
    "part_names", "pip_coord", "pip_index_of", "random_device",
    "random_spec", "register_spec", "slice_site_name", "spec_names",
    "variant_names",
]
