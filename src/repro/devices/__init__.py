"""Virtex-class device model: parts, geometry, resources, routing fabric.

Public entry point: :func:`get_device` / :class:`Device`.
"""

from .device import Device, get_device
from .family import PartInfo, normalize_part_name, part_by_idcode, part_info, part_names
from .geometry import (
    BITS_PER_ROW,
    CLB_FRAMES,
    NUM_GCLK,
    ColumnKind,
    ConfigColumn,
    Geometry,
    IobSite,
    Side,
    clb_site_name,
    parse_clb_site,
    parse_iob_site,
    parse_slice_site,
    slice_site_name,
)
from .resources import SLICE, BitCoord, Field, field, pip_coord, pip_index_of

__all__ = [
    "BITS_PER_ROW", "BitCoord", "CLB_FRAMES", "ColumnKind", "ConfigColumn",
    "Device", "Field", "Geometry", "IobSite", "NUM_GCLK", "PartInfo", "SLICE",
    "Side", "clb_site_name", "field", "get_device", "normalize_part_name",
    "parse_clb_site", "parse_iob_site", "parse_slice_site", "part_by_idcode",
    "part_info", "part_names", "pip_coord", "pip_index_of", "slice_site_name",
]
