"""Device registry: the shipped catalog plus runtime-registered specs.

The shipped catalog is *data* — ``data/families.json`` next to this
package — parsed into :class:`~repro.devices.spec.GeometrySpec` objects
at import.  The ``virtex`` family follows the published Virtex 2.5 V
data sheet (DS003: XCV50 through XCV1000, two block-RAM columns, per-part
JEDEC-style IDCODEs); the ``variant`` family ships deliberately-irregular
geometries for the family-parametrized test suites.  Everything else in
the package derives its geometry from a spec, so adding a part is a data
edit (or a :func:`register_spec` call, which is how the seeded fuzzer in
:mod:`repro.devices.fuzz` injects random devices).

``PartInfo`` is the historical name for the catalog entry type; it *is*
:class:`GeometrySpec` now.
"""

from __future__ import annotations

import os

from ..errors import UnknownPartError
from .spec import GeometrySpec, load_spec_file

#: Back-compat alias: a part's static description is its geometry spec.
PartInfo = GeometrySpec

_DATA_FILE = os.path.join(os.path.dirname(__file__), "data", "families.json")

#: Every registered spec by canonical name (catalog + runtime additions).
_SPECS: dict[str, GeometrySpec] = {s.name: s for s in load_spec_file(_DATA_FILE)}

#: The classic Virtex catalog (what ``part_names`` reports).
_CATALOG: dict[str, GeometrySpec] = {
    name: s for name, s in _SPECS.items() if s.family == "virtex"
}

#: Package suffixes accepted after a part name (ignored for geometry).
_PACKAGES = ("bg256", "bg352", "bg432", "bg560", "cs144", "fg256", "fg456",
             "fg676", "hq240", "pq240", "tq144")


def part_names() -> list[str]:
    """All Virtex catalog part names, smallest to largest."""
    return sorted(_CATALOG, key=lambda n: _CATALOG[n].slices)


def variant_names() -> list[str]:
    """The shipped irregular family variants, smallest to largest."""
    variants = [s for s in _SPECS.values() if s.family == "variant"]
    return [s.name for s in sorted(variants, key=lambda s: s.slices)]


def spec_names() -> list[str]:
    """Every registered spec name (catalog, variants, runtime additions)."""
    return sorted(_SPECS)


def register_spec(spec: GeometrySpec) -> GeometrySpec:
    """Register a spec so :func:`part_info` / ``get_device`` resolve it.

    Re-registering an identical spec is a no-op (the registered singleton
    is returned); a name or IDCODE collision with a *different* spec is
    an error, so runtime registrations can never shadow the catalog.
    """
    existing = _SPECS.get(spec.name)
    if existing is not None:
        if existing == spec:
            return existing
        raise UnknownPartError(
            f"spec name {spec.name!r} already registered with a different geometry"
        )
    for other in _SPECS.values():
        if other.idcode == spec.idcode:
            raise UnknownPartError(
                f"spec {spec.name!r}: IDCODE 0x{spec.idcode:08x} already "
                f"belongs to {other.name}"
            )
    _SPECS[spec.name] = spec
    return spec


def normalize_part_name(name: str) -> str:
    """Canonicalize a part string.

    Accepts any registered spec name verbatim (case-insensitive) —
    catalog parts, irregular variants, and fuzzer devices alike — plus
    the Virtex shorthand and package/speed-qualified forms: ``XCV300``,
    ``xcv300``, ``v300``, ``v300bg432-6``, ``XCV300-BG432`` (the XDL
    ``design`` statement uses the lowercase short form).
    """
    canonical = name.strip().upper()
    if canonical in _SPECS:
        return canonical
    s = name.strip().lower()
    if s.startswith("xcv"):
        s = s[3:]
    elif s.startswith("v"):
        s = s[1:]
    # strip speed grade
    if "-" in s:
        s = s.split("-", 1)[0]
    # strip package suffix
    for pkg in _PACKAGES:
        if s.endswith(pkg):
            s = s[: -len(pkg)]
            break
    s = s.strip()
    if not s.isdigit():
        raise UnknownPartError(f"cannot parse part name {name!r}")
    return f"XCV{int(s)}"


def packaged_name(name: str) -> str:
    """The lowercase package-qualified form .bit/XDL headers carry.

    Catalog parts use the classic shorthand (``XCV50`` -> ``v50bg432``);
    any other registered spec keeps its name verbatim (lowercased), which
    :func:`normalize_part_name` resolves back via the registry — so the
    header round-trips for variants and fuzzer devices too.
    """
    canonical = normalize_part_name(name)
    if canonical in _CATALOG:
        return canonical.lower().replace("xcv", "v") + "bg432"
    return canonical.lower()


def part_info(name: str) -> GeometrySpec:
    """Look up a registered spec by (possibly qualified) name."""
    canonical = normalize_part_name(name)
    try:
        return _SPECS[canonical]
    except KeyError:
        raise UnknownPartError(
            f"unknown part {name!r} (canonical {canonical!r}); "
            f"known parts: {', '.join(part_names())}"
        ) from None


def part_by_idcode(idcode: int) -> GeometrySpec:
    """Reverse lookup used by bitstream readers/boards."""
    for p in _SPECS.values():
        if p.idcode == idcode:
            return p
    raise UnknownPartError(f"no part with IDCODE 0x{idcode:08x}")
