"""Virtex family catalog.

Dimensions follow the published Virtex 2.5 V data sheet (DS003): the CLB
array sizes for XCV50 through XCV1000, two block-RAM columns (one along each
vertical edge), and per-part JEDEC-style IDCODEs.  Everything else in the
package derives its geometry from this table, so adding a part here is
enough to make it usable by the whole flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import UnknownPartError


@dataclass(frozen=True)
class PartInfo:
    """Static description of one Virtex part."""

    name: str            # canonical part name, e.g. "XCV300"
    clb_rows: int        # CLB array height
    clb_cols: int        # CLB array width
    bram_cols: int       # number of block-RAM columns (edge columns)
    idcode: int          # device identification code (readback/IDCODE reg)
    speed_grades: tuple[str, ...] = ("-4", "-5", "-6")

    @property
    def slices(self) -> int:
        """Total logic slices (2 per CLB)."""
        return self.clb_rows * self.clb_cols * 2

    @property
    def lut4s(self) -> int:
        """Total 4-input LUTs (2 per slice)."""
        return self.slices * 2

    @property
    def bram_blocks(self) -> int:
        """Block RAMs: one per 4 CLB rows per BRAM column."""
        return (self.clb_rows // 4) * self.bram_cols


# CLB array dimensions from the Virtex data sheet.  IDCODEs use the real
# Xilinx manufacturer id (0x093) in the low bits with a per-part family code;
# the exact values only need to be distinct and stable for readback checks.
_CATALOG: dict[str, PartInfo] = {
    p.name: p
    for p in (
        PartInfo("XCV50", 16, 24, 2, 0x0060_2093),
        PartInfo("XCV100", 20, 30, 2, 0x0061_0093),
        PartInfo("XCV150", 24, 36, 2, 0x0061_8093),
        PartInfo("XCV200", 28, 42, 2, 0x0062_0093),
        PartInfo("XCV300", 32, 48, 2, 0x0062_8093),
        PartInfo("XCV400", 40, 60, 2, 0x0063_0093),
        PartInfo("XCV600", 48, 72, 2, 0x0064_0093),
        PartInfo("XCV800", 56, 84, 2, 0x0065_0093),
        PartInfo("XCV1000", 64, 96, 2, 0x0066_0093),
    )
}

#: Package suffixes accepted after a part name (ignored for geometry).
_PACKAGES = ("bg256", "bg352", "bg432", "bg560", "cs144", "fg256", "fg456",
             "fg676", "hq240", "pq240", "tq144")


def part_names() -> list[str]:
    """All catalog part names, smallest to largest."""
    return sorted(_CATALOG, key=lambda n: _CATALOG[n].slices)


def normalize_part_name(name: str) -> str:
    """Canonicalize a part string.

    Accepts ``XCV300``, ``xcv300``, ``v300`` and package/speed-qualified
    forms such as ``v300bg432-6`` or ``XCV300-BG432`` (the XDL ``design``
    statement uses the lowercase short form).
    """
    s = name.strip().lower()
    if s.startswith("xcv"):
        s = s[3:]
    elif s.startswith("v"):
        s = s[1:]
    # strip speed grade
    if "-" in s:
        s = s.split("-", 1)[0]
    # strip package suffix
    for pkg in _PACKAGES:
        if s.endswith(pkg):
            s = s[: -len(pkg)]
            break
    s = s.strip()
    if not s.isdigit():
        raise UnknownPartError(f"cannot parse part name {name!r}")
    return f"XCV{int(s)}"


def part_info(name: str) -> PartInfo:
    """Look up a part by (possibly qualified) name."""
    canonical = normalize_part_name(name)
    try:
        return _CATALOG[canonical]
    except KeyError:
        raise UnknownPartError(
            f"unknown part {name!r} (canonical {canonical!r}); "
            f"known parts: {', '.join(part_names())}"
        ) from None


def part_by_idcode(idcode: int) -> PartInfo:
    """Reverse lookup used by bitstream readers/boards."""
    for p in _CATALOG.values():
        if p.idcode == idcode:
            return p
    raise UnknownPartError(f"no part with IDCODE 0x{idcode:08x}")
