"""Routing fabric: per-tile wires and the uniform PIP table.

The interconnect follows the Virtex style in miniature:

* each slice output drives two of eight tile **output multiplexer** lines
  (``OUT0..7``, the GRM entry points),
* ``OUT`` lines drive **single-length lines** (8 per direction, reaching the
  adjacent tile), **hex lines** (4 per direction, reaching 6 tiles away),
  and bidirectionally-tapped **long lines** (4 horizontal per row, 4
  vertical per column, spanning the chip),
* arriving singles can continue straight, turn, or enter the tile's
  **input muxes** feeding slice pins,
* four **global clock** lines reach every tile's ``CLK`` pins, driven by
  dedicated clock buffers/pads,
* edge tiles additionally have ``IO_IN``/``IO_OUT`` wires binding IOB pads
  to the fabric.

Every configurable connection is a **PIP** (programmable interconnect
point).  The PIP pattern is identical for every tile — edge effects are
handled by clipping at graph-build time — so the whole fabric is described
once, here.  PIP ``p`` of a tile is configured by the tile bit
:func:`repro.devices.resources.pip_coord` ``(p)``.

Direction convention (0-based grid, row 0 at the top):
``E``: col+1, ``W``: col-1, ``N``: row-1, ``S``: row+1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache

from ..errors import DeviceError
from .geometry import NUM_GCLK
from .resources import PIP_CAPACITY

#: Singles per direction.
NUM_SINGLES = 8
#: Hex lines per direction.
NUM_HEX = 4
#: Hex line span in tiles.
HEX_SPAN = 6
#: Long lines per row (LH) and per column (LV).
NUM_LONG = 4
#: IO injection/extraction wires per edge tile.  Left/right IOB sites use
#: wires 0..1, top/bottom sites wires 2..3, so a corner tile (which hosts
#: sites from two edges) never sees two pads on one wire.
NUM_IO = 4


class WireKind(enum.Enum):
    """Wire categories; used for delays, router base costs and rendering."""

    PIN_IN = "pin_in"       # slice input pins (F1..G4, BX, BY, CE, SR)
    PIN_CLK = "pin_clk"     # slice clock pins
    PIN_OUT = "pin_out"     # slice output pins (X, Y, XQ, YQ)
    OMUX = "omux"           # tile output mux lines OUT0..7
    SINGLE = "single"       # single-length lines
    HEX = "hex"             # hex lines
    LONG_H = "long_h"       # horizontal long lines
    LONG_V = "long_v"       # vertical long lines
    GCLK = "gclk"           # global clock lines
    IO_IN = "io_in"         # pad -> fabric
    IO_OUT = "io_out"       # fabric -> pad


#: Nominal interconnect delays in nanoseconds (used by timing analysis and
#: as router base costs).  First-order values in the spirit of the Virtex
#: speed files: longer wires are faster per tile but costlier to enter.
WIRE_DELAY_NS: dict[WireKind, float] = {
    WireKind.PIN_IN: 0.15,
    WireKind.PIN_CLK: 0.10,
    WireKind.PIN_OUT: 0.00,
    WireKind.OMUX: 0.20,
    WireKind.SINGLE: 0.35,
    WireKind.HEX: 0.60,
    WireKind.LONG_H: 1.20,
    WireKind.LONG_V: 1.20,
    WireKind.GCLK: 0.50,
    WireKind.IO_IN: 0.60,
    WireKind.IO_OUT: 0.60,
}

# ---------------------------------------------------------------------------
# Wire name space (uniform for every tile)
# ---------------------------------------------------------------------------

#: Slice input pins in router "P order" — the order input-mux PIP patterns
#: index them by.
INPUT_PINS: tuple[str, ...] = tuple(
    f"S{s}_{p}"
    for s in (0, 1)
    for p in ("F1", "F2", "F3", "F4", "G1", "G2", "G3", "G4", "BX", "BY", "CE", "SR")
)
CLK_PINS: tuple[str, ...] = ("S0_CLK", "S1_CLK")
OUTPUT_PINS: tuple[str, ...] = tuple(
    f"S{s}_{p}" for s in (0, 1) for p in ("X", "Y", "XQ", "YQ")
)
OMUX_WIRES: tuple[str, ...] = tuple(f"OUT{j}" for j in range(8))

#: Direction order used throughout: East, West, North, South.
DIRECTIONS: tuple[str, ...] = ("E", "W", "N", "S")
#: Grid offset of one step in each direction.
DIR_OFFSET: dict[str, tuple[int, int]] = {"E": (0, 1), "W": (0, -1), "N": (-1, 0), "S": (1, 0)}

SINGLE_WIRES: tuple[str, ...] = tuple(
    f"S{d}{i}" for d in DIRECTIONS for i in range(NUM_SINGLES)
)
HEX_WIRES: tuple[str, ...] = tuple(f"H{d}{k}" for d in DIRECTIONS for k in range(NUM_HEX))
IO_WIRES: tuple[str, ...] = tuple(f"IO_IN{i}" for i in range(NUM_IO)) + tuple(
    f"IO_OUT{i}" for i in range(NUM_IO)
)
LONG_WIRES: tuple[str, ...] = tuple(f"LH{k}" for k in range(NUM_LONG)) + tuple(
    f"LV{k}" for k in range(NUM_LONG)
)
GCLK_WIRES: tuple[str, ...] = tuple(f"GCLK{g}" for g in range(NUM_GCLK))

#: Every wire a tile knows about, in index order.
WIRES: tuple[str, ...] = (
    INPUT_PINS + CLK_PINS + OUTPUT_PINS + OMUX_WIRES + SINGLE_WIRES + HEX_WIRES
    + IO_WIRES + LONG_WIRES + GCLK_WIRES
)
WIRE_INDEX: dict[str, int] = {w: i for i, w in enumerate(WIRES)}
NUM_WIRES = len(WIRES)


def wire_index(name: str) -> int:
    """Index of a wire name within a tile's wire set."""
    try:
        return WIRE_INDEX[name]
    except KeyError:
        raise DeviceError(f"unknown wire {name!r}") from None


def _classify(name: str) -> WireKind:
    if name in INPUT_PINS:
        return WireKind.PIN_IN
    if name in CLK_PINS:
        return WireKind.PIN_CLK
    if name in OUTPUT_PINS:
        return WireKind.PIN_OUT
    if name.startswith("OUT"):
        return WireKind.OMUX
    if name.startswith("H"):
        return WireKind.HEX
    if name.startswith("IO_IN"):
        return WireKind.IO_IN
    if name.startswith("IO_OUT"):
        return WireKind.IO_OUT
    if name.startswith("LH"):
        return WireKind.LONG_H
    if name.startswith("LV"):
        return WireKind.LONG_V
    if name.startswith("GCLK"):
        return WireKind.GCLK
    return WireKind.SINGLE


#: Wire kind by wire index.
WIRE_KIND: tuple[WireKind, ...] = tuple(_classify(w) for w in WIRES)


def wire_kind(idx_or_name: int | str) -> WireKind:
    if isinstance(idx_or_name, str):
        idx_or_name = wire_index(idx_or_name)
    return WIRE_KIND[idx_or_name]


# ---------------------------------------------------------------------------
# PIP table
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PipDef:
    """One programmable connection of the uniform tile pattern.

    ``src`` is expressed relative to the owning tile as ``(drow, dcol,
    wire index)``; the destination is always a local wire.  The PIP is
    configured by tile bit ``resources.pip_coord(index)``.
    """

    index: int
    src: tuple[int, int, int]
    dst: int

    @property
    def src_name(self) -> str:
        return WIRES[self.src[2]]

    @property
    def dst_name(self) -> str:
        return WIRES[self.dst]


def _incoming_singles() -> list[tuple[str, int, tuple[int, int, int]]]:
    """Singles arriving at a tile: (direction-of-travel, index, src ref).

    A single travelling east arrives from the *west* neighbour's ``SE``
    wire, and so on.
    """
    arrivals = []
    for d in DIRECTIONS:
        dr, dc = DIR_OFFSET[d]
        for i in range(NUM_SINGLES):
            arrivals.append((d, i, (-dr, -dc, wire_index(f"S{d}{i}"))))
    return arrivals


def _incoming_hexes() -> list[tuple[str, int, tuple[int, int, int]]]:
    arrivals = []
    for d in DIRECTIONS:
        dr, dc = DIR_OFFSET[d]
        for k in range(NUM_HEX):
            arrivals.append((d, k, (-dr * HEX_SPAN, -dc * HEX_SPAN, wire_index(f"H{d}{k}"))))
    return arrivals


#: Orthogonal turn targets for an incoming single, by direction of travel.
_TURNS: dict[str, tuple[str, str]] = {"E": ("N", "S"), "W": ("N", "S"), "N": ("E", "W"), "S": ("E", "W")}
#: Index rotation applied on each kind of turn, keyed by (travel, turn).
_TURN_ROT: dict[str, tuple[int, int]] = {"E": (1, 5), "W": (3, 7), "N": (1, 5), "S": (3, 7)}


def _build_pip_table() -> tuple[PipDef, ...]:
    pips: list[PipDef] = []

    def add(src: tuple[int, int, int] | str, dst: str) -> None:
        s = (0, 0, wire_index(src)) if isinstance(src, str) else src
        pips.append(PipDef(len(pips), s, wire_index(dst)))

    # 1. slice outputs -> OUT lines (two choices each)
    for j, pin in enumerate(OUTPUT_PINS):
        add(pin, f"OUT{j}")
        add(pin, f"OUT{(j + 4) % 8}")

    # 2. OUT -> singles, one per direction (index-matched)
    for j in range(8):
        for d in DIRECTIONS:
            add(f"OUT{j}", f"S{d}{j}")

    # 3. OUT -> hexes
    for j in range(8):
        for d in DIRECTIONS:
            add(f"OUT{j}", f"H{d}{j % NUM_HEX}")

    # 4. OUT -> long lines (tapped anywhere along the row/column)
    for j in range(8):
        add(f"OUT{j}", f"LH{j % NUM_LONG}")
        add(f"OUT{j}", f"LV{j % NUM_LONG}")

    # 5. incoming single -> straight continuation + two orthogonal turns
    for d, i, src in _incoming_singles():
        add(src, f"S{d}{i}")
        r1, r2 = _TURN_ROT[d]
        t1, t2 = _TURNS[d]
        add(src, f"S{t1}{(i + r1) % NUM_SINGLES}")
        add(src, f"S{t2}{(i + r2) % NUM_SINGLES}")

    # 6. incoming single -> input pins (3 pins each; the pattern guarantees
    #    every pin is reachable from every direction by one single index)
    npins = len(INPUT_PINS)
    for dnum, (d, i, src) in enumerate(_incoming_singles()):
        base = 8 * (dnum // NUM_SINGLES) + 3 * i
        for t in range(3):
            add(src, INPUT_PINS[(base + t) % npins])

    # 7. incoming hex -> two singles + hex continuation
    for d, k, src in _incoming_hexes():
        add(src, f"S{d}{2 * k}")
        add(src, f"S{d}{2 * k + 1}")
        add(src, f"H{d}{k}")

    # 8. long-line taps -> singles
    for k in range(NUM_LONG):
        add(f"LH{k}", f"SE{k}")
        add(f"LH{k}", f"SE{k + 4}")
        add(f"LV{k}", f"SN{k}")
        add(f"LV{k}", f"SN{k + 4}")

    # 9. global clocks -> clock pins
    for g in range(NUM_GCLK):
        add(f"GCLK{g}", "S0_CLK")
        add(f"GCLK{g}", "S1_CLK")

    # 10. IO injection: pad wire -> input pins and singles (edge tiles)
    for i in range(NUM_IO):
        for t in range(4):
            add(f"IO_IN{i}", INPUT_PINS[(6 * i + 3 * t) % npins])
        for d in DIRECTIONS:
            add(f"IO_IN{i}", f"S{d}{2 * i}")

    # 11. IO extraction: OUT lines -> pad wire
    for j in range(8):
        add(f"OUT{j}", f"IO_OUT{j % NUM_IO}")

    # 12. IO extraction from routing: arriving singles -> pad wires, so a
    #     remote source can drive an output pad (not only same-tile slices)
    for _, i, src in _incoming_singles():
        add(src, f"IO_OUT{i % NUM_IO}")

    # 13. OMUX feedback: OUT lines -> same-tile input pins (direct feedback
    #     paths, as the Virtex OMUX provides); essential for tight cycles
    #     like counters where a slice feeds itself
    for j in range(8):
        for t in range(3):
            add(f"OUT{j}", INPUT_PINS[(3 * j + t) % npins])

    if len(pips) > PIP_CAPACITY:
        raise DeviceError(
            f"PIP pattern needs {len(pips)} bits, capacity is {PIP_CAPACITY}"
        )
    return tuple(pips)


#: The uniform PIP table (same pattern for every tile).
PIP_TABLE: tuple[PipDef, ...] = _build_pip_table()
NUM_PIPS = len(PIP_TABLE)


@lru_cache(maxsize=1)
def pips_by_dst() -> dict[int, tuple[PipDef, ...]]:
    """Local destination wire index -> PIPs that can drive it."""
    out: dict[int, list[PipDef]] = {}
    for p in PIP_TABLE:
        out.setdefault(p.dst, []).append(p)
    return {k: tuple(v) for k, v in out.items()}


@lru_cache(maxsize=1)
def pips_by_src() -> dict[int, tuple[tuple[int, int, PipDef], ...]]:
    """Wire index -> PIPs (anywhere) that read it.

    Each entry is ``(owner_drow, owner_dcol, pip)``: a PIP owned by the tile
    at that offset *from the wire's tile* has this wire as its source.
    """
    out: dict[int, list[tuple[int, int, PipDef]]] = {}
    for p in PIP_TABLE:
        dr, dc, w = p.src
        out.setdefault(w, []).append((-dr, -dc, p))
    return {k: tuple(v) for k, v in out.items()}


def pip_by_wires(src_name: str, dst_name: str) -> PipDef:
    """Find the local-pattern PIP connecting two wire names (for XDL I/O).

    ``src_name`` is interpreted from the owning tile's point of view (i.e.
    the source reference of the PIP, which may be a neighbour's wire — the
    name alone identifies it because each (src, dst) name pair occurs at
    most once in the pattern).
    """
    si, di = wire_index(src_name), wire_index(dst_name)
    for p in PIP_TABLE:
        if p.src[2] == si and p.dst == di:
            return p
    raise DeviceError(f"no PIP {src_name} -> {dst_name} in the tile pattern")
