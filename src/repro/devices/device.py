"""The :class:`Device` facade: one object describing a whole part.

A ``Device`` combines the part catalog entry, the configuration-frame
geometry, the CLB resource space, and the routing fabric, and provides the
coordinate translations everything else uses:

* tile resource bit -> (linear frame index, bit offset within frame),
* routing-node encoding for the router (tile, wire) <-> integer id,
* canonicalization of chip-spanning wires (long lines, global clocks).
"""

from __future__ import annotations

from functools import lru_cache

from ..errors import DeviceError
from . import resources, wires
from .family import PartInfo, part_info
from .geometry import Geometry, IobSite, Side
from .resources import BitCoord, pip_coord
from .wires import NUM_WIRES, WIRE_KIND, WireKind


class Device:
    """A Virtex-class part: geometry + resources + routing fabric."""

    def __init__(self, part: str | PartInfo):
        self.part: PartInfo = part if isinstance(part, PartInfo) else part_info(part)
        self.geometry = Geometry(self.part)
        self.rows = self.geometry.rows
        self.cols = self.geometry.cols

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.part.name

    @property
    def spec(self) -> PartInfo:
        """The declarative geometry spec this device was built from."""
        return self.part

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Device) and other.part.name == self.part.name

    def __hash__(self) -> int:
        return hash(self.part.name)

    # -- frame-bit locations ---------------------------------------------------

    def clb_bit_location(self, row: int, col: int, coord: BitCoord) -> tuple[int, int]:
        """(linear frame index, bit offset) of a CLB tile configuration bit."""
        g = self.geometry
        g.check_tile(row, col)
        frame = g.frame_base(g.major_of_clb_col(col)) + coord.minor
        return frame, g.row_bit_offset(row) + coord.rowbit

    def pip_bit_location(self, row: int, col: int, pip_index: int) -> tuple[int, int]:
        """(frame, bit) of routing PIP ``pip_index`` of a tile."""
        return self.clb_bit_location(row, col, pip_coord(pip_index))

    def iob_bit_location(self, site: IobSite, which: int) -> tuple[int, int]:
        """(frame, bit) of an IOB enable bit (``which`` is 0=in, 1=out)."""
        g = self.geometry
        off = resources.iob_bit_offset(site.index, which)
        if site.side in (Side.LEFT, Side.RIGHT):
            if not 0 <= site.position < self.rows:
                raise DeviceError(f"IOB {site.name}: row out of range")
            frame = g.frame_base(g.major_of_iob(site.side)) + resources.IOB_MINOR
            return frame, g.row_bit_offset(site.position) + off
        if not 0 <= site.position < self.cols:
            raise DeviceError(f"IOB {site.name}: column out of range")
        frame = g.frame_base(g.major_of_clb_col(site.position)) + resources.IOB_MINOR
        base = g.top_bit_offset if site.side is Side.TOP else g.bottom_bit_offset
        return frame, base + off

    def gclk_bit_location(self, g_index: int) -> tuple[int, int]:
        """(frame, bit) of the global clock buffer enable for ``GCLK{g}``."""
        from .geometry import NUM_GCLK

        if not 0 <= g_index < NUM_GCLK:
            raise DeviceError(f"GCLK index {g_index} out of range 0..{NUM_GCLK - 1}")
        frame = self.geometry.frame_base(0) + g_index  # clock column, minor g
        return frame, resources.GCLK_ENABLE_BIT

    # -- routing-node space -----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Size of the (dense, partly unused) routing node id space."""
        return self.rows * self.cols * NUM_WIRES

    def canonical_wire(self, row: int, col: int, wire: int) -> tuple[int, int, int]:
        """Map chip-spanning wires to their canonical owner tile.

        Long horizontal lines are owned by column 0 of their row, vertical
        long lines by row 0 of their column, and global clocks by (0, 0);
        everything else is identity.
        """
        kind = WIRE_KIND[wire]
        if kind is WireKind.LONG_H:
            return row, 0, wire
        if kind is WireKind.LONG_V:
            return 0, col, wire
        if kind is WireKind.GCLK:
            return 0, 0, wire
        return row, col, wire

    def node_id(self, row: int, col: int, wire: int) -> int:
        """Dense integer id of a routing node (canonicalized first)."""
        r, c, w = self.canonical_wire(row, col, wire)
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise DeviceError(f"node ({row},{col},{wires.WIRES[wire]}) outside device")
        return (r * self.cols + c) * NUM_WIRES + w

    def node_of(self, node: int) -> tuple[int, int, int]:
        """Inverse of :meth:`node_id` -> (row, col, wire index)."""
        tile, w = divmod(node, NUM_WIRES)
        r, c = divmod(tile, self.cols)
        return r, c, w

    def node_str(self, node: int) -> str:
        """Human-readable node, e.g. ``R3C23.SE2`` (1-based, XDL style)."""
        r, c, w = self.node_of(node)
        return f"R{r + 1}C{c + 1}.{wires.WIRES[w]}"

    # -- PIP validity -------------------------------------------------------------

    def pip_valid(self, row: int, col: int, pip: wires.PipDef) -> bool:
        """True if the PIP's source wire exists on this device at this tile."""
        dr, dc, _ = pip.src
        sr, sc = row + dr, col + dc
        if not (0 <= sr < self.rows and 0 <= sc < self.cols):
            # chip-spanning sources are valid anywhere along their span
            kind = WIRE_KIND[pip.src[2]]
            return kind in (WireKind.LONG_H, WireKind.LONG_V, WireKind.GCLK)
        return True

    def tile_pips(self, row: int, col: int) -> list[wires.PipDef]:
        """PIPs of the uniform pattern that are valid at a tile."""
        self.geometry.check_tile(row, col)
        return [p for p in wires.PIP_TABLE if self.pip_valid(row, col, p)]

    # -- convenience -----------------------------------------------------------

    def full_bitstream_bytes_estimate(self) -> int:
        """Approximate size of a complete bitstream in bytes (frame payload
        plus per-column command overhead); the exact number comes from the
        assembler, this is for quick capacity planning."""
        payload = self.geometry.config_payload_words()
        overhead = 64 + 2 * len(self.geometry.columns)  # not-a-frame-count
        return 4 * (payload + overhead)


@lru_cache(maxsize=None)
def _get_device_canonical(canonical_name: str) -> Device:
    return Device(part_info(canonical_name))


def get_device(part_name: str) -> Device:
    """Shared, cached Device instances (they are immutable)."""
    from .family import normalize_part_name

    return _get_device_canonical(normalize_part_name(part_name))
