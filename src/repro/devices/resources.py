"""JBits-style resource space: named configuration bits of a CLB tile.

Every configurable bit of a CLB tile has a coordinate ``(minor, rowbit)``:
``minor`` selects one of the column's 48 frames, ``rowbit`` one of the 18
bits the tile's row contributes to that frame.  This module defines the
allocation — it is the **single source of truth** shared by bitgen (encode),
JBits (get/set), readback and the functional simulator (decode):

====================  =======================================================
minors 0..15          LUT truth tables: bit ``i`` of each of the four LUTs
                      lives in minor ``i``; rowbit ``2*s + 0`` is slice
                      ``s``'s F-LUT, rowbit ``2*s + 1`` its G-LUT.
minor 16              flip-flop / control plane (one bit per slice at
                      ``base + s``): FFX/FFY used, init values, clock
                      inversion, sync/async SR, CE/SR usage, latch mode.
minor 17              datapath muxes: DXMUX / DYMUX select the FF D input
                      (LUT output vs. BX/BY bypass pin).
minors 18..47         routing plane: PIP ``p`` of the tile's uniform PIP
                      table lives at ``(18 + p // 18, p % 18)``.
====================  =======================================================

Resources are exposed as :class:`Field` objects (an ordered tuple of bit
coordinates).  ``Field`` instances are what the JBits-style API accepts, in
the spirit of the original ``com.xilinx.JBits.Virtex.Bits`` constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ResourceError
from .geometry import BITS_PER_ROW, CLB_FRAMES

#: First minor frame of the routing (PIP) plane.
PIP_MINOR_BASE = 18

#: Number of PIP bit positions available per tile.
PIP_CAPACITY = (CLB_FRAMES - PIP_MINOR_BASE) * BITS_PER_ROW  # 540

#: Width of a LUT truth table.
LUT_SIZE = 16

#: Number of logic slices per CLB.
SLICES_PER_CLB = 2


@dataclass(frozen=True, order=True)
class BitCoord:
    """One configuration bit within a CLB tile: (minor frame, row bit)."""

    minor: int
    rowbit: int

    def __post_init__(self) -> None:
        if not 0 <= self.minor < CLB_FRAMES:
            raise ResourceError(f"minor {self.minor} out of range 0..{CLB_FRAMES - 1}")
        if not 0 <= self.rowbit < BITS_PER_ROW:
            raise ResourceError(f"rowbit {self.rowbit} out of range 0..{BITS_PER_ROW - 1}")


@dataclass(frozen=True)
class Field:
    """A named, ordered group of tile configuration bits.

    ``coords[0]`` is the most-significant bit when the field is read or
    written as an integer.
    """

    name: str
    coords: tuple[BitCoord, ...]

    @property
    def width(self) -> int:
        return len(self.coords)

    def __repr__(self) -> str:
        return f"Field({self.name}, {self.width} bit{'s' if self.width != 1 else ''})"


def _bit(name: str, minor: int, rowbit: int) -> Field:
    return Field(name, (BitCoord(minor, rowbit),))


def pip_coord(pip_index: int) -> BitCoord:
    """Tile bit coordinate of PIP ``pip_index`` in the uniform PIP table."""
    if not 0 <= pip_index < PIP_CAPACITY:
        raise ResourceError(f"pip index {pip_index} out of range 0..{PIP_CAPACITY - 1}")
    return BitCoord(PIP_MINOR_BASE + pip_index // BITS_PER_ROW, pip_index % BITS_PER_ROW)


def pip_index_of(coord: BitCoord) -> int:
    """Inverse of :func:`pip_coord`."""
    if coord.minor < PIP_MINOR_BASE:
        raise ResourceError(f"{coord} is not in the routing plane")
    return (coord.minor - PIP_MINOR_BASE) * BITS_PER_ROW + coord.rowbit


class SliceResources:
    """All named resources of one slice (S0 or S1) of a CLB tile."""

    def __init__(self, s: int):
        if s not in (0, 1):
            raise ResourceError(f"slice index must be 0 or 1, got {s}")
        self.index = s
        p = f"S{s}."
        # LUT truth tables: bit i in minor i; coords MSB-first means
        # coords[0] is truth-table bit 15.
        self.F = Field(p + "F", tuple(BitCoord(i, 2 * s + 0) for i in reversed(range(LUT_SIZE))))
        self.G = Field(p + "G", tuple(BitCoord(i, 2 * s + 1) for i in reversed(range(LUT_SIZE))))
        # minor 16: FF/control plane
        self.FFX_USED = _bit(p + "FFX_USED", 16, 0 + s)
        self.FFY_USED = _bit(p + "FFY_USED", 16, 2 + s)
        self.FFX_INIT = _bit(p + "FFX_INIT", 16, 4 + s)
        self.FFY_INIT = _bit(p + "FFY_INIT", 16, 6 + s)
        self.CKINV = _bit(p + "CKINV", 16, 8 + s)
        self.SYNC_ATTR = _bit(p + "SYNC_ATTR", 16, 10 + s)
        self.CE_USED = _bit(p + "CE_USED", 16, 12 + s)
        self.SR_USED = _bit(p + "SR_USED", 16, 14 + s)
        self.LATCH_MODE = _bit(p + "LATCH_MODE", 16, 16 + s)
        # minor 17: datapath muxes (0: D <- LUT output, 1: D <- bypass pin)
        self.DXMUX = _bit(p + "DXMUX", 17, 0 + s)
        self.DYMUX = _bit(p + "DYMUX", 17, 2 + s)
        # state-capture cells: GCAPTURE latches the flip-flop outputs here
        # so readback can observe user state (the BoardScope-style debug
        # path); never written by bitgen
        self.CAPTURE_X = _bit(p + "CAPTURE_X", 17, 4 + s)
        self.CAPTURE_Y = _bit(p + "CAPTURE_Y", 17, 6 + s)

    def lut(self, which: str) -> Field:
        """LUT truth-table field by letter ('F' or 'G')."""
        if which == "F":
            return self.F
        if which == "G":
            return self.G
        raise ResourceError(f"no LUT {which!r} in a slice (expected 'F' or 'G')")

    def fields(self) -> list[Field]:
        """All fields of this slice, in a stable order."""
        return [
            self.F, self.G,
            self.FFX_USED, self.FFY_USED, self.FFX_INIT, self.FFY_INIT,
            self.CKINV, self.SYNC_ATTR, self.CE_USED, self.SR_USED,
            self.LATCH_MODE, self.DXMUX, self.DYMUX,
            self.CAPTURE_X, self.CAPTURE_Y,
        ]


#: The two slices' resource sets; index with ``SLICE[s]``.
SLICE: tuple[SliceResources, SliceResources] = (SliceResources(0), SliceResources(1))

#: Registry of every named logic field of a tile (PIPs excluded — those are
#: addressed by index through :func:`pip_coord`).
REGISTRY: dict[str, Field] = {f.name: f for s in SLICE for f in s.fields()}


def field(name: str) -> Field:
    """Look up a logic field by name, e.g. ``"S0.F"`` or ``"S1.FFX_USED"``."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ResourceError(
            f"unknown resource {name!r}; known: {', '.join(sorted(REGISTRY))}"
        ) from None


def _check_no_overlap() -> None:
    """Allocation sanity: no two logic bits may share a coordinate, and the
    logic plane must not spill into the routing plane."""
    seen: dict[BitCoord, str] = {}
    for f in REGISTRY.values():
        for c in f.coords:
            if c.minor >= PIP_MINOR_BASE:
                raise ResourceError(f"{f.name} allocated inside routing plane: {c}")
            if c in seen:
                raise ResourceError(f"{f.name} overlaps {seen[c]} at {c}")
            seen[c] = f.name


_check_no_overlap()


# --------------------------------------------------------------------------
# Non-CLB resources: IOB sites and global clock buffers.  These live in other
# configuration columns; their coordinates are expressed as (minor, bit
# offset *within the frame*) and resolved against a Geometry by the frame
# layer.  Kept tiny by design: an IOB here is an input and/or output enable.
# --------------------------------------------------------------------------

#: Per-IOB-site config bits, addressed relative to the site's 18-bit region
#: (left/right sites: the row region of the IOB column; top/bottom sites:
#: the top/bottom region of the CLB column).  Site ``i`` uses bits
#: ``4*i + offset``.
IOB_ENABLE_IN_OFFSET = 0    # pad drives the fabric (input buffer on)
IOB_ENABLE_OUT_OFFSET = 1   # fabric drives the pad (output buffer on)
IOB_BITS_PER_SITE = 4
IOB_MINOR = 0               # all IOB enables live in minor frame 0


def iob_bit_offset(site_index: int, which: int) -> int:
    """Bit offset of an IOB enable within its 18-bit region."""
    off = IOB_BITS_PER_SITE * site_index + which
    if off >= BITS_PER_ROW:
        raise ResourceError(f"IOB site index {site_index} does not fit the region")
    return off


#: Global clock buffer ``g`` enable: clock column, minor ``g``, frame bit 0.
GCLK_ENABLE_BIT = 0
