"""Seeded random-device generation.

:func:`random_spec` draws a valid :class:`~repro.devices.spec.GeometrySpec`
from a seed — non-square CLB arrays, any BRAM edge combination and order,
irregular frame counts — and :func:`random_device` registers it so the
whole stack (``get_device``, bitgen, the assembler, the analyzers)
operates on it exactly like a catalog part.  Determinism is the contract:
the same seed always yields the same spec, so a failing fuzz case is
reproducible from its seed alone (the property suites print it).

Draw ranges are chosen so every draw is constructible: the spec
constructor re-validates everything (FAR field widths, resource-plane
fit, BRAM interleave fit), making it the oracle for legality; a draw
that failed validation would be a bug in the ranges below, not something
to be skipped silently.
"""

from __future__ import annotations

import random

from .device import Device, get_device
from .family import register_spec
from .spec import BRAM_CONTENT_FRAMES, CLB_FRAMES, GeometrySpec

#: Every BRAM edge arrangement a spec allows, including the empty one and
#: the reversed major-address order.
_BRAM_ARRANGEMENTS: tuple[tuple[str, ...], ...] = (
    (), ("L",), ("R",), ("L", "R"), ("R", "L"),
)

#: Content-frame counts that divide the 4096-bit block and fit the frame
#: payload for any array height >= 4 (see GeometrySpec validation).
_CONTENT_FRAME_CHOICES = (BRAM_CONTENT_FRAMES, 2 * BRAM_CONTENT_FRAMES)


def random_spec(
    seed: int,
    *,
    min_rows: int = 8,
    max_rows: int = 28,
    min_cols: int = 8,
    max_cols: int = 32,
) -> GeometrySpec:
    """A valid random geometry, fully determined by ``seed``.

    Names are ``XCR<seed>`` and IDCODEs embed the seed (family nibble
    ``0xF`` keeps them disjoint from the shipped catalog), so specs from
    different seeds never collide in the registry.
    """
    if seed < 0:
        raise ValueError(f"random_spec seed must be >= 0, got {seed}")
    rng = random.Random(seed)
    rows = rng.randrange(min_rows, max_rows + 1)
    cols = rng.randrange(min_cols, max_cols + 1)
    return GeometrySpec(
        name=f"XCR{seed}",
        clb_rows=rows,
        clb_cols=cols,
        idcode=0xF000_0093 | ((seed & 0xFFFF) << 12),
        bram_sides=rng.choice(_BRAM_ARRANGEMENTS),
        clock_frames=rng.randrange(2, 17),
        clb_frames=rng.randrange(CLB_FRAMES, CLB_FRAMES + 9),
        iob_frames=rng.randrange(20, 81),
        bram_int_frames=rng.randrange(8, 41),
        bram_content_frames=rng.choice(_CONTENT_FRAME_CHOICES),
        family="fuzz",
        speed_grades=("-5",),
    )


def random_device(seed: int, **ranges: int) -> Device:
    """Register (idempotently) and return the random device for ``seed``."""
    spec = register_spec(random_spec(seed, **ranges))
    return get_device(spec.name)
