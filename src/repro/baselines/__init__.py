"""Related-work baselines: PARBIT (options-file frame extraction),
JBitsDiff (bitstream diff -> replayable core), and the conventional
one-complete-bitstream-per-combination flow."""

from .fullflow import (
    Combination,
    FullFlowResult,
    build_combination_netlist,
    enumerate_combinations,
    run_full_flow_baseline,
)
from .jbitsdiff import Core, CoreEdit, extract_core, replay_core
from .parbit import ParbitOptions, block_frames, extract_region, parbit, parse_options

__all__ = [
    "Combination", "Core", "CoreEdit", "FullFlowResult", "ParbitOptions",
    "block_frames", "build_combination_netlist", "enumerate_combinations",
    "extract_core", "extract_region", "parbit", "parse_options",
    "replay_core", "run_full_flow_baseline",
]
