"""PARBIT-style partial bitstream extraction (Horta & Lockwood, WUCS-01-13).

The paper's §2.3 comparator: where JPG derives everything from the CAD
flow's XDL/UCF files, PARBIT transforms an *existing* bitfile — the user
writes an **options file** naming the target region, and the tool copies
that region's configuration frames out of the full bitstream into a
partial one.  No design knowledge, no JBits: just frame surgery.

Options-file grammar (modelled on PARBIT's block mode)::

    input base.bit
    target v50
    block clb 3 12        # start column, end column (1-based, inclusive)
    block iob left        # optionally include an IOB column
    startup no

The TOOLS benchmark compares this approach with JPG on generation time and
on what it can/cannot express (PARBIT cannot re-place a module or check
interfaces — it faithfully copies whatever the frames contain).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bitstream.assembler import partial_stream
from ..bitstream.bitfile import BitFile
from ..bitstream.reader import parse_bitstream
from ..devices import Device, get_device, packaged_name
from ..devices.geometry import Side
from ..errors import ParseError, ReproError


class ParbitError(ReproError):
    """Invalid options or extraction request."""


@dataclass
class ParbitOptions:
    """Parsed options file."""

    target: str = ""
    clb_blocks: list[tuple[int, int]] = field(default_factory=list)  # 0-based inclusive
    iob_sides: list[Side] = field(default_factory=list)
    startup: bool = False


def parse_options(text: str) -> ParbitOptions:
    """Parse a PARBIT options file."""
    opts = ParbitOptions()
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        key = fields[0].lower()
        if key == "input":
            continue  # path handled by the caller
        if key == "target":
            if len(fields) != 2:
                raise ParseError("target needs one part name", lineno)
            opts.target = fields[1]
        elif key == "block":
            if len(fields) >= 2 and fields[1].lower() == "clb":
                if len(fields) != 4:
                    raise ParseError("block clb needs start and end columns", lineno)
                start, end = int(fields[2]), int(fields[3])
                if start < 1 or end < start:
                    raise ParseError(f"bad clb block {start}..{end}", lineno)
                opts.clb_blocks.append((start - 1, end - 1))
            elif len(fields) == 3 and fields[1].lower() == "iob":
                side = fields[2].lower()
                if side not in ("left", "right"):
                    raise ParseError("block iob side must be left/right", lineno)
                opts.iob_sides.append(Side.LEFT if side == "left" else Side.RIGHT)
            else:
                raise ParseError(f"bad block statement {line!r}", lineno)
        elif key == "startup":
            if len(fields) != 2 or fields[1].lower() not in ("yes", "no"):
                raise ParseError("startup must be yes/no", lineno)
            opts.startup = fields[1].lower() == "yes"
        else:
            raise ParseError(f"unknown option {key!r}", lineno)
    if not opts.clb_blocks and not opts.iob_sides:
        raise ParbitError("options select no blocks")
    return opts


def block_frames(device: Device, opts: ParbitOptions) -> list[int]:
    """Linear frames selected by the options."""
    g = device.geometry
    frames: list[int] = []
    for start, end in opts.clb_blocks:
        if end >= device.cols:
            raise ParbitError(
                f"clb block {start + 1}..{end + 1} exceeds {device.name} "
                f"({device.cols} columns)"
            )
        for col in range(start, end + 1):
            major = g.major_of_clb_col(col)
            base = g.frame_base(major)
            frames.extend(range(base, base + g.columns[major].frames))
    for side in opts.iob_sides:
        major = g.major_of_iob(side)
        base = g.frame_base(major)
        frames.extend(range(base, base + g.columns[major].frames))
    return sorted(set(frames))


def parbit(
    full: bytes | BitFile, options: str | ParbitOptions, *, device: Device | None = None
) -> BitFile:
    """Transform a full bitfile into a partial one per the options file."""
    if isinstance(full, bytes):
        if device is None:
            raise ParbitError("raw config bytes need an explicit device")
        part_name = device.name
        config = full
    else:
        config = full.config_bytes
        part_name = full.part_name
        if device is None:
            device = get_device(part_name)
    opts = parse_options(options) if isinstance(options, str) else options
    if opts.target and get_device(opts.target) != device:
        raise ParbitError(
            f"options target {opts.target!r} does not match bitfile part {device.name}"
        )
    frames_mem, stats = parse_bitstream(device, config)
    if stats.frames_written != device.geometry.total_frames:
        raise ParbitError(
            f"input is not a complete bitstream ({stats.frames_written} frames)"
        )
    frames = block_frames(device, opts)
    data = partial_stream(frames_mem, frames, startup=opts.startup)
    return BitFile(
        design_name="parbit_partial.ncd",
        part_name=packaged_name(device.name),
        config_bytes=data,
    )


def extract_region(full: bytes | BitFile, device: Device, col_start: int, col_end: int) -> BitFile:
    """Programmatic shortcut: extract CLB columns [col_start, col_end]."""
    opts = ParbitOptions(clb_blocks=[(col_start, col_end)])
    return parbit(full, opts, device=device)
