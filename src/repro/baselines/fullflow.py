"""The conventional-flow baseline: one complete bitstream per combination.

"In a conventional CAD flow, which can only produce complete bitstreams,
36 runs of the CAD tool flow would be needed to produce the 36 different
bitstreams" (§4.1).  This module is that flow: for every combination of
module versions it assembles the corresponding full netlist, runs the
complete implementation flow, and produces a complete bitstream — giving
the FIG4 benchmark its baseline for tool runtime, storage, and download
time.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from ..bitstream.bitfile import BitFile
from ..bitstream.bitgen import bitgen
from ..core.project import JpgProject
from ..flow.driver import run_flow
from ..netlist.builder import NetlistBuilder
from ..workloads.designs import RegionPlan, version_name
from ..workloads.generators import attach_module


@dataclass
class Combination:
    """One fully-implemented combination of module versions."""

    versions: dict[str, str]              # region -> version name
    bitfile: BitFile
    flow_seconds: float

    @property
    def label(self) -> str:
        return "+".join(f"{r}:{v}" for r, v in sorted(self.versions.items()))


@dataclass
class FullFlowResult:
    """All combinations, with aggregate accounting."""

    combinations: list[Combination] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.combinations)

    @property
    def total_bytes(self) -> int:
        return sum(c.bitfile.size for c in self.combinations)

    @property
    def total_flow_seconds(self) -> float:
        return sum(c.flow_seconds for c in self.combinations)


def enumerate_combinations(plans: list[RegionPlan]) -> list[dict[str, str]]:
    """Every combination of one variant per region (3x3x4 = 36 for the
    paper's scenario)."""
    axes = [
        [(plan.name, version_name(spec)) for spec in plan.variants]
        for plan in plans
    ]
    return [dict(combo) for combo in itertools.product(*axes)]


def build_combination_netlist(name: str, plans: list[RegionPlan], choice: dict[str, str]):
    """The full-chip netlist for one combination of versions."""
    b = NetlistBuilder(name)
    clk = b.clock("clk")
    for plan in plans:
        spec = next(
            s for s in plan.variants if version_name(s) == choice[plan.name]
        )
        attach_module(b, plan.name, spec, clk)
    return b.finish()


def run_full_flow_baseline(
    part: str,
    plans: list[RegionPlan],
    *,
    limit: int | None = None,
    seed: int | None = 0,
    effort: float = 1.0,
) -> FullFlowResult:
    """Run the conventional flow for every (or the first ``limit``)
    combination(s); each run is an independent full-chip implementation."""
    project = JpgProject("fullflow_constraints", part)
    for plan in plans:
        project.add_region(plan.name, plan.rect)
    constraints = project.constraints()

    result = FullFlowResult()
    for choice in enumerate_combinations(plans)[:limit]:
        label = "_".join(f"{r}-{v}" for r, v in sorted(choice.items()))
        netlist = build_combination_netlist(f"combo_{label}", plans, choice)
        t0 = time.perf_counter()
        flow = run_flow(netlist, part, constraints, seed=seed, effort=effort)
        bitfile = bitgen(flow.design)
        seconds = time.perf_counter() - t0
        result.combinations.append(Combination(choice, bitfile, seconds))
    return result
