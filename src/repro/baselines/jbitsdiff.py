"""JBitsDiff-style core extraction (James-Roxby & Guccione, FCCM 1999).

The paper's other §2.3 comparator: instead of emitting a partial
*bitstream*, JBitsDiff compares two full bitstreams and produces a **core**
— a replayable sequence of JBits calls that turns one configuration into
the other, optionally relocated to a different row/column origin.  It is
the "run-time parameterisable core" counterpart to JPG's flow-integrated
approach.

Here a core is a list of tile-bit edits.  Extraction diffs frame memories
through the same resource map everything else uses; replaying pushes the
edits through a :class:`~repro.jbits.api.JBits` instance, so cores compose
with JPG-generated state and dirty-frame tracking keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bitstream.frames import FrameMemory
from ..devices import Device
from ..devices.geometry import BITS_PER_ROW, CLB_FRAMES
from ..devices.resources import BitCoord
from ..errors import ReproError
from ..jbits.api import JBits


class CoreError(ReproError):
    """Invalid core extraction or replay."""


@dataclass(frozen=True)
class CoreEdit:
    """One configuration-bit difference, tile-relative."""

    drow: int          # row offset from the core origin
    dcol: int          # column offset from the core origin
    minor: int
    rowbit: int
    value: int


@dataclass
class Core:
    """A relocatable set of tile edits extracted from a bitstream diff."""

    name: str
    part: str
    origin: tuple[int, int]              # (row, col) the edits were extracted at
    height: int
    width: int
    edits: list[CoreEdit] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.edits)


def extract_core(
    name: str,
    before: FrameMemory,
    after: FrameMemory,
    *,
    region: tuple[int, int, int, int] | None = None,
) -> Core:
    """Diff two configurations into a relocatable core.

    ``region`` is (rmin, cmin, rmax, cmax); by default the whole CLB array
    is scanned and the core's bounding box is the extent of the diff.
    """
    if before.device != after.device:
        raise CoreError("cannot diff configurations of different parts")
    device: Device = before.device
    rmin, cmin, rmax, cmax = region or (0, 0, device.rows - 1, device.cols - 1)

    raw_edits: list[tuple[int, int, int, int, int]] = []
    for col in range(cmin, cmax + 1):
        b_bits = before.column_bits(col)
        a_bits = after.column_bits(col)
        if np.array_equal(b_bits, a_bits):
            continue
        for row in range(rmin, rmax + 1):
            off = device.geometry.row_bit_offset(row)
            tb = b_bits[:, off:off + BITS_PER_ROW]
            ta = a_bits[:, off:off + BITS_PER_ROW]
            if np.array_equal(tb, ta):
                continue
            for minor, rowbit in zip(*np.nonzero(tb != ta)):
                raw_edits.append(
                    (row, col, int(minor), int(rowbit), int(ta[minor, rowbit]))
                )
    if not raw_edits:
        return Core(name, device.name, (rmin, cmin), 0, 0)

    r0 = min(e[0] for e in raw_edits)
    c0 = min(e[1] for e in raw_edits)
    r1 = max(e[0] for e in raw_edits)
    c1 = max(e[1] for e in raw_edits)
    edits = [
        CoreEdit(r - r0, c - c0, minor, rowbit, v)
        for r, c, minor, rowbit, v in raw_edits
    ]
    return Core(name, device.name, (r0, c0), r1 - r0 + 1, c1 - c0 + 1, edits)


def replay_core(core: Core, jbits: JBits, *, origin: tuple[int, int] | None = None) -> int:
    """Apply a core through JBits calls, optionally relocated.

    Returns the number of edits applied.  Relocation moves the core's
    bounding box to a new (row, col) origin — the "pre-placed, pre-routed
    core" reuse JBitsDiff was built for.  Note that relocated routing is
    only meaningful onto identical fabric (always true here: the PIP
    pattern is uniform), and edge-clipped PIPs make relocation to the
    device boundary illegal.
    """
    if jbits.device.name != core.part:
        raise CoreError(f"core targets {core.part}, JBits instance is {jbits.device.name}")
    r0, c0 = origin if origin is not None else core.origin
    if r0 + core.height > jbits.device.rows or c0 + core.width > jbits.device.cols:
        raise CoreError(
            f"core {core.name!r} ({core.height}x{core.width}) does not fit at "
            f"({r0},{c0}) on {core.part}"
        )
    for e in core.edits:
        row, col = r0 + e.drow, c0 + e.dcol
        coord = BitCoord(e.minor, e.rowbit)
        if e.minor >= CLB_FRAMES:
            raise CoreError(f"edit outside CLB plane: minor {e.minor}")
        frame, bit = jbits.device.clb_bit_location(row, col, coord)
        fm = jbits.frames
        if fm is None:
            raise CoreError("JBits instance has no bitstream loaded")
        if fm.get_bit(frame, bit) != e.value:
            fm.set_bit(frame, bit, e.value)
            jbits.touch_frames([frame])
    return len(core.edits)
