"""JSON-lines wire protocol: ``jpg serve`` and ``jpg submit``.

One request or response per line, UTF-8 JSON.  Ops:

``{"op": "ping", "id": 1}``
    → ``{"id": 1, "ok": true, "op": "pong"}``
``{"op": "stats", "id": 2}``
    → ``{"id": 2, "ok": true, "stats": {...}, "pending": N}``
``{"op": "submit", "id": 3, "name": ..., "xdl": ..., "ucf": ...,
"region": ..., "granularity": ...}``
    → ``{"id": 3, "ok": true, "name": ..., "part": ..., "size": N,
    "frames": N, "source": "generated"|"disk", "full_size": N,
    "data": <base64 config bytes>}``
    or ``{"id": 3, "ok": false, "code": "queue-full"|"bad-request"|
    "generation-failed", "error": "..."}``
``{"op": "shutdown", "id": 4}``
    → ``{"id": 4, "ok": true}`` after the scheduler drains; the server
    then stops accepting connections.
``{"op": "fetch", "id": 5, "base": <base key>, "region": <region tag>,
"digest": <module digest>}``
    → ``{"id": 5, "ok": true, "found": true, "data": <base64>}`` when the
    node's disk cache holds the key, ``{"id": 5, "ok": true, "found":
    false}`` otherwise.  This is the cluster peer-fill op
    (:mod:`repro.cluster`): strictly cache-to-cache, it never triggers a
    generation on the answering node.

Submits are pipelined: a client may send many on one connection without
waiting; responses carry the request's ``id`` and arrive in completion
order.  Identical concurrent submits — same XDL/UCF/region/granularity
against the same base — coalesce onto one generation (see
:mod:`repro.serve.scheduler`).

The server listens on a unix socket (``jpg serve --socket PATH``), a TCP
host:port (``--tcp HOST:PORT`` — the cluster transport; port 0 binds an
ephemeral port, published via ``JpgServer.tcp_address``), or stdin/stdout
(``--stdio``, one client).  :class:`ServeClient` is the blocking client
the ``jpg submit`` CLI uses; it dials either transport
(:func:`parse_address` decides which form an address string is).

Lifecycle: a stale unix-socket file (left by a killed server) is removed
on startup instead of failing the bind, and with ``handle_signals=True``
a ``SIGTERM`` triggers a graceful drain — in-flight requests finish and
get their responses before the scheduler closes.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import json
import os
import signal
import socket
import sys

from ..errors import (
    QueueFullError,
    ReproError,
    ServeError,
    ServiceUnavailableError,
    UsageError,
)
from .scheduler import Scheduler
from .service import GenerationService, GenRequest


def _encode(obj: dict) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def parse_address(address: str | tuple) -> tuple[str, int] | str:
    """Classify a dial/listen address: ``(host, port)`` for TCP, a path
    string for unix sockets.

    ``"host:1234"`` (a numeric port, no path separator) is TCP —
    ``"127.0.0.1:0"`` and ``":0"`` bind an ephemeral loopback port;
    anything else is a unix-socket path.
    """
    if isinstance(address, tuple):
        return (str(address[0]), int(address[1]))
    host, sep, port = address.rpartition(":")
    if sep and port.isdigit() and os.sep not in address:
        return (host or "127.0.0.1", int(port))
    return address


class JpgServer:
    """The asyncio generation server (one scheduler, many connections)."""

    def __init__(
        self,
        service: GenerationService,
        *,
        max_queue: int = 32,
        workers: int | None = None,
    ):
        self.service = service
        self.scheduler = Scheduler(service, max_queue=max_queue, workers=workers)
        self._shutdown = asyncio.Event()
        self._stopping = False
        #: Bound ``(host, port)`` once :meth:`serve_tcp` is listening.
        self.tcp_address: tuple[str, int] | None = None

    # -- lifecycle ------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Begin a graceful drain-then-stop from the event-loop thread.

        Safe as an ``add_signal_handler`` callback: intake stops, every
        in-flight request finishes and is answered, then the listeners
        close.  Idempotent."""
        if self._stopping:
            return
        self._stopping = True
        asyncio.get_running_loop().create_task(self._drain_and_stop())

    async def _drain_and_stop(self) -> None:
        await self.scheduler.drain()
        self._shutdown.set()

    @staticmethod
    def _remove_stale_socket(path: str) -> None:
        """Unlink a socket file no live server answers on.

        A server killed without cleanup (kill -9, OOM) leaves its socket
        file behind and a naive rebind fails with ``EADDRINUSE``.  Probe
        it: a live listener means the address is genuinely taken
        (:class:`~repro.errors.ServeError`); a dead one is removed."""
        if not os.path.exists(path):
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(path)
        else:
            raise ServeError(f"{path} already has a live server listening")
        finally:
            probe.close()

    # -- transports -----------------------------------------------------------

    async def serve_unix(self, path: str, *, handle_signals: bool = False) -> None:
        """Listen on a unix socket until a ``shutdown`` op (or, with
        ``handle_signals``, a SIGTERM) arrives; stale socket files from a
        killed predecessor are removed instead of failing the bind."""
        self._remove_stale_socket(path)
        server = await asyncio.start_unix_server(self._handle, path=path)

        def cleanup() -> None:
            with contextlib.suppress(OSError):
                os.unlink(path)

        await self._serve(server, handle_signals=handle_signals, cleanup=cleanup)

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0, *,
                        handle_signals: bool = False) -> None:
        """Listen on TCP ``host:port`` (the cluster transport) until a
        ``shutdown`` op or SIGTERM; ``port=0`` binds an ephemeral port,
        published as :attr:`tcp_address` before the first connection."""
        server = await asyncio.start_server(self._handle, host=host, port=port)
        sockname = server.sockets[0].getsockname()
        self.tcp_address = (sockname[0], sockname[1])
        await self._serve(server, handle_signals=handle_signals)

    async def _serve(self, server: asyncio.AbstractServer, *,
                     handle_signals: bool, cleanup=None) -> None:
        """Run one listener until shutdown, then tear everything down."""
        loop = asyncio.get_running_loop()
        installed = False
        if handle_signals:
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signal.SIGTERM, self.request_shutdown)
                installed = True
        try:
            await self._shutdown.wait()
        finally:
            if installed:
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.remove_signal_handler(signal.SIGTERM)
            server.close()
            await server.wait_closed()
            await self.scheduler.aclose()
            self._close_service()
            if cleanup is not None:
                cleanup()

    async def serve_stdio(self) -> None:
        """Serve one client over stdin/stdout (stdout stays protocol-only)."""
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        w_transport, w_protocol = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(w_transport, w_protocol, reader, loop)
        await self._handle(reader, writer)
        await self.scheduler.aclose()
        self._close_service()

    def _close_service(self) -> None:
        """Release the service's execution backend on shutdown (tolerates
        service doubles that do not implement close)."""
        close = getattr(self.service, "close", None)
        if close is not None:
            close()

    # -- connection handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        wlock = asyncio.Lock()
        conn_tasks: set[asyncio.Task] = set()
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    msg = json.loads(line)
                    if not isinstance(msg, dict):
                        raise ValueError("message is not an object")
                except ValueError as exc:
                    await self._send(writer, wlock, {
                        "id": None, "ok": False, "code": "bad-request",
                        "error": f"malformed request line: {exc}",
                    })
                    continue
                op = msg.get("op")
                if op == "submit":
                    task = asyncio.get_running_loop().create_task(
                        self._submit(msg, writer, wlock)
                    )
                    conn_tasks.add(task)
                    task.add_done_callback(conn_tasks.discard)
                elif op == "ping":
                    await self._send(writer, wlock,
                                     {"id": msg.get("id"), "ok": True, "op": "pong"})
                elif op == "fetch":
                    await self._send(writer, wlock, self._fetch_reply(msg))
                elif op == "stats":
                    await self._send(writer, wlock, {
                        "id": msg.get("id"), "ok": True,
                        "pending": self.scheduler.pending,
                        "stats": self.service.stats(),
                    })
                elif op == "shutdown":
                    await self.scheduler.drain()
                    await self._send(writer, wlock,
                                     {"id": msg.get("id"), "ok": True})
                    self._shutdown.set()
                    break
                else:
                    await self._send(writer, wlock, {
                        "id": msg.get("id"), "ok": False, "code": "bad-request",
                        "error": f"unknown op {op!r}",
                    })
            if conn_tasks:
                await asyncio.wait(set(conn_tasks))
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _submit(self, msg: dict, writer: asyncio.StreamWriter,
                      wlock: asyncio.Lock) -> None:
        rid = msg.get("id")
        try:
            request = self._parse_submit(msg)
        except UsageError as exc:
            await self._send(writer, wlock, {
                "id": rid, "ok": False, "code": "bad-request", "error": str(exc),
            })
            return
        try:
            result = await self.scheduler.submit(request)
        except QueueFullError as exc:
            await self._send(writer, wlock, {
                "id": rid, "ok": False, "code": "queue-full", "error": str(exc),
            })
            return
        except ReproError as exc:
            # a request the engine could not even start on (unparseable
            # region, bad granularity): the client must still get an answer
            await self._send(writer, wlock, {
                "id": rid, "ok": False, "code": "bad-request", "error": str(exc),
            })
            return
        if not result.ok:
            await self._send(writer, wlock, {
                "id": rid, "ok": False, "code": "generation-failed",
                "error": result.error,
            })
            return
        assert result.data is not None
        await self._send(writer, wlock, {
            "id": rid,
            "ok": True,
            "name": request.name,
            "part": self.service.part,
            "size": result.size,
            "frames": result.frames,
            "source": result.source,
            "full_size": self.service.full_size,
            "deployed": result.deployed,
            "seconds": result.seconds,
            "data": base64.b64encode(result.data).decode(),
        })

    def _fetch_reply(self, msg: dict) -> dict:
        """Answer a peer-fill ``fetch`` op from the local disk cache.

        Tolerates service doubles without ``fetch_partial`` (always a
        miss), so the op is safe against any node."""
        rid = msg.get("id")
        base = msg.get("base")
        tag = msg.get("region")
        digest = msg.get("digest")
        if not all(isinstance(v, str) and v for v in (base, tag, digest)):
            return {"id": rid, "ok": False, "code": "bad-request",
                    "error": "fetch needs string 'base', 'region', 'digest'"}
        fetch = getattr(self.service, "fetch_partial", None)
        data = fetch(base, tag, digest) if fetch is not None else None
        if data is None:
            return {"id": rid, "ok": True, "found": False}
        return {"id": rid, "ok": True, "found": True,
                "data": base64.b64encode(data).decode()}

    @staticmethod
    def _parse_submit(msg: dict) -> GenRequest:
        xdl = msg.get("xdl")
        if not isinstance(xdl, str) or not xdl.strip():
            raise UsageError("submit needs non-empty 'xdl' text")
        ucf = msg.get("ucf")
        region = msg.get("region")
        for field, value in (("ucf", ucf), ("region", region)):
            if value is not None and not isinstance(value, str):
                raise UsageError(f"'{field}' must be a string when present")
        name = msg.get("name") or "module"
        return GenRequest(
            name=str(name),
            xdl=xdl,
            ucf=ucf,
            region=region,
            granularity=str(msg.get("granularity", "column")),
        )

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, wlock: asyncio.Lock,
                    obj: dict) -> None:
        async with wlock:
            writer.write(_encode(obj))
            with contextlib.suppress(ConnectionError):
                await writer.drain()


class ServeClient:
    """Blocking JSON-lines client over a unix socket or TCP (``jpg
    submit``, the cluster router, and peer-fill fetches all dial this).

    ``address`` is either a unix-socket path, a ``"host:port"`` string,
    or a ``(host, port)`` tuple (see :func:`parse_address`).
    """

    def __init__(self, address: str | tuple, *, timeout: float = 300.0):
        parsed = parse_address(address)
        self.address = (f"{parsed[0]}:{parsed[1]}"
                        if isinstance(parsed, tuple) else parsed)
        #: Back-compat alias (the pre-TCP attribute name).
        self.socket_path = self.address
        try:
            if isinstance(parsed, tuple):
                self._sock = socket.create_connection(parsed, timeout=timeout)
            else:
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(timeout)
                self._sock.connect(parsed)
        except OSError as exc:
            raise ServiceUnavailableError(
                f"cannot reach jpg serve at {self.address}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Close the socket (safe to call twice)."""
        with contextlib.suppress(OSError):
            self._file.close()
        with contextlib.suppress(OSError):
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests -------------------------------------------------------------

    def request(self, msg: dict) -> dict:
        """Send one op and return its (id-matched) response."""
        self._next_id += 1
        rid = msg.get("id", self._next_id)
        msg = {**msg, "id": rid}
        try:
            self._file.write(_encode(msg))
            self._file.flush()
            while True:
                line = self._file.readline()
                if not line:
                    raise ServiceUnavailableError(
                        f"jpg serve at {self.socket_path} closed the connection"
                    )
                resp = json.loads(line)
                if resp.get("id") == rid:
                    return resp
        except (OSError, ValueError) as exc:
            raise ServiceUnavailableError(
                f"protocol failure talking to {self.socket_path}: {exc}"
            ) from exc

    def ping(self) -> dict:
        """Liveness probe (the ``ping`` op)."""
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        """Server counters and cache stats (the ``stats`` op)."""
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        """Ask the server to drain and exit (the ``shutdown`` op)."""
        return self.request({"op": "shutdown"})

    def fetch(self, base_key: str, region_tag: str, digest: str) -> bytes | None:
        """Peer-fill fetch: the node's cached bytes for a key, or None.

        Strictly cache-to-cache — a miss on the peer never triggers a
        generation there (the ``fetch`` op contract)."""
        resp = self.request({
            "op": "fetch", "base": base_key, "region": region_tag,
            "digest": digest,
        })
        if not resp.get("ok") or not resp.get("found"):
            return None
        return base64.b64decode(resp["data"])

    def submit(
        self,
        name: str,
        xdl: str,
        *,
        ucf: str | None = None,
        region: str | None = None,
        granularity: str = "column",
    ) -> dict:
        """Submit one generation request; returns the raw response dict
        (``data`` still base64).  Use :func:`decode_partial` for the bytes."""
        return self.request({
            "op": "submit", "name": name, "xdl": xdl, "ucf": ucf,
            "region": region, "granularity": granularity,
        })


def decode_partial(response: dict) -> bytes:
    """The raw partial-bitstream bytes of a successful submit response."""
    if not response.get("ok"):
        raise ServiceUnavailableError(
            f"response is not a successful submit: {response.get('error')}"
        )
    return base64.b64decode(response["data"])
