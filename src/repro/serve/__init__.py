"""The partial-bitstream generation service (``jpg serve``).

A long-lived front over :class:`~repro.batch.BatchJpg`: parse the base
once, answer many client requests, and make repeated work free three
different ways —

* :mod:`repro.serve.diskcache` — a persistent content-addressed cache of
  cleared-region states and finished partials, shared across restarts
  and processes (file-locked single-flight, LRU size cap);
* :mod:`repro.serve.scheduler` — an asyncio scheduler with a bounded
  queue (reject-with-reason backpressure), per-region FIFO ordering,
  coalescing of identical in-flight requests, and graceful drain;
* :mod:`repro.serve.protocol` — a JSON-lines wire protocol over a unix
  socket or stdio, plus the blocking :class:`ServeClient` behind the
  ``jpg submit`` CLI.

See ``docs/API.md`` ("Generation service") for the full contract.
"""

from .diskcache import DiskCache, DiskCacheStats, PersistentFrameCache, region_tag
from .protocol import JpgServer, ServeClient, decode_partial, parse_address
from .scheduler import Scheduler
from .service import GenerationService, GenRequest, ServeResult

__all__ = [
    "DiskCache",
    "DiskCacheStats",
    "GenRequest",
    "GenerationService",
    "JpgServer",
    "PersistentFrameCache",
    "Scheduler",
    "ServeClient",
    "ServeResult",
    "decode_partial",
    "parse_address",
    "region_tag",
]
