"""Persistent content-addressed cache: warm starts across processes.

The in-memory :class:`~repro.batch.cache.FrameCache` dies with its
process, so a restarted service pays every region clear again even though
nothing changed.  This module spills both kinds of shareable state to
disk, keyed entirely by content:

* **cleared-region states** under ``<root>/cleared/``, keyed by
  ``(base fingerprint, region footprint)`` — one ``.npz`` holding the
  frame array, the dirty-frame set, and the device name;
* **finished partial bitstreams** under ``<root>/partials/``, keyed by
  ``(base fingerprint, region footprint, module digest)`` — the raw
  configuration bytes, byte-identical to a fresh generation.

Content keying makes entries immutable: a key either names exactly one
value or nothing, so a second process (or a process restarted after a
kill) can trust whatever it finds.  Writes are atomic (temp file +
``os.replace``) so a crash mid-store leaves no torn entry, and unreadable
entries are treated as misses and deleted.

Cross-process coordination uses ``fcntl`` file locks under
``<root>/locks/``: :meth:`DiskCache.lock` serializes the *fetch* and the
*store* of one key — never the compute in between, so one process's slow
clear cannot stall every other process on the same key.  Two racers may
duplicate a compute, but stores re-verify under the lock and the first
entry wins; content keying makes the duplicates byte-identical, so the
outcome is one entry either way.  Total size is LRU-capped: loads
refresh an entry's mtime and
stores evict the stalest entries once ``max_bytes`` is exceeded.

Disk traffic is observable as ``serve.disk_hit`` / ``serve.disk_miss`` /
``serve.disk_store`` / ``serve.disk_evict`` counters on the context's
metrics registry.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import threading
from contextlib import AbstractContextManager
from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - fcntl exists on every POSIX platform we target
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from ..batch.cache import ClearedState, FrameCache
from ..bitstream.frames import FrameMemory
from ..devices import get_device
from ..errors import ServeError
from ..flow.floorplan import RegionRect
from ..obs import current_metrics


def region_tag(region: RegionRect | None) -> str:
    """Filename-safe footprint tag (``"none"`` for region-less requests)."""
    if region is None:
        return "none"
    return f"{region.rmin}_{region.cmin}_{region.rmax}_{region.cmax}"


@dataclass(frozen=True)
class DiskCacheStats:
    """Hit/miss/store/evict accounting snapshot."""

    hits: int
    misses: int
    stores: int
    evictions: int


class _FileLock:
    """A blocking exclusive ``fcntl`` lock on one lock file.

    Each acquisition opens its own descriptor, so the same lock object
    excludes concurrent threads of one process as well as other processes.
    """

    def __init__(self, path: str):
        self.path = path
        self._local = threading.local()

    def __enter__(self) -> "_FileLock":
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        self._local.fd = fd
        return self

    def __exit__(self, *exc) -> None:
        fd = self._local.fd
        self._local.fd = None
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


class DiskCache:
    """Content-addressed on-disk store of cleared states and partials."""

    def __init__(self, root: str, *, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ServeError(f"max_bytes must be positive, got {max_bytes}")
        self.root = os.path.abspath(root)
        self.max_bytes = max_bytes
        for sub in ("cleared", "partials", "locks"):
            os.makedirs(os.path.join(self.root, sub), exist_ok=True)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0

    # -- paths / locks --------------------------------------------------------

    def cleared_path(self, base_key: str, region: RegionRect) -> str:
        """On-disk path of one cleared-region state."""
        return os.path.join(
            self.root, "cleared", f"{base_key[:32]}-{region_tag(region)}.npz"
        )

    def partial_path(
        self, base_key: str, region: RegionRect | None, module_digest: str
    ) -> str:
        """On-disk path of one finished partial bitstream."""
        return self.partial_path_tag(base_key, region_tag(region), module_digest)

    def partial_path_tag(self, base_key: str, tag: str, module_digest: str) -> str:
        """On-disk path of one finished partial, by footprint *tag* — the
        form peer-fill ``fetch`` requests carry on the wire."""
        return os.path.join(
            self.root, "partials",
            f"{base_key[:32]}-{tag}-{module_digest[:32]}.bit",
        )

    def lock(self, name: str) -> AbstractContextManager:
        """A blocking cross-process lock scoped to ``name``."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return contextlib.nullcontext()
        return _FileLock(os.path.join(self.root, "locks", f"{name}.lock"))

    @property
    def stats(self) -> DiskCacheStats:
        """Hit/miss/store/eviction counters (thread-safe snapshot)."""
        with self._lock:
            return DiskCacheStats(self._hits, self._misses,
                                  self._stores, self._evictions)

    # -- cleared-region states ------------------------------------------------

    def load_cleared(self, base_key: str, region: RegionRect) -> ClearedState | None:
        """The spilled cleared state for ``(base_key, region)``, or None."""
        path = self.cleared_path(base_key, region)
        try:
            with np.load(path, allow_pickle=False) as npz:
                device = get_device(str(npz["device"]))
                frames = FrameMemory(device, npz["data"])
                dirty = frozenset(int(i) for i in npz["dirty"])
        except FileNotFoundError:
            self._miss()
            return None
        except Exception:
            # torn or stale entry (e.g. written by an older format): a miss,
            # and the entry is dropped so it cannot keep failing
            with contextlib.suppress(OSError):
                os.unlink(path)
            self._miss()
            return None
        self._hit(path)
        return frames, dirty

    def store_cleared(self, base_key: str, region: RegionRect,
                      value: ClearedState) -> None:
        """Persist one cleared-region state (atomic write-then-rename)."""
        frames, dirty = value
        path = self.cleared_path(base_key, region)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez(
                    f,
                    device=np.array(frames.device.name),
                    data=frames.data,
                    dirty=np.array(sorted(dirty), dtype=np.int64),
                )
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self._stored()

    # -- finished partials ----------------------------------------------------

    def load_partial(self, base_key: str, region: RegionRect | None,
                     module_digest: str) -> bytes | None:
        """The stored partial bitstream for the key, or None."""
        return self.load_partial_tag(base_key, region_tag(region), module_digest)

    def load_partial_tag(self, base_key: str, tag: str,
                         module_digest: str) -> bytes | None:
        """The stored partial for a tag-form key, or None (peer fetches)."""
        path = self.partial_path_tag(base_key, tag, module_digest)
        try:
            with open(path, "rb") as f:
                data = f.read()
        except FileNotFoundError:
            self._miss()
            return None
        self._hit(path)
        return data

    def store_partial_tag(self, base_key: str, tag: str, module_digest: str,
                          data: bytes) -> None:
        """Persist one finished partial under a tag-form key (atomic)."""
        path = self.partial_path_tag(base_key, tag, module_digest)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self._stored()

    def store_partial(self, base_key: str, region: RegionRect | None,
                      module_digest: str, data: bytes) -> None:
        """Persist one finished partial (atomic write-then-rename)."""
        self.store_partial_tag(base_key, region_tag(region), module_digest, data)

    # -- accounting / capping -------------------------------------------------

    def _hit(self, path: str) -> None:
        # refresh recency so LRU eviction favors cold entries
        with contextlib.suppress(OSError):
            os.utime(path)
        with self._lock:
            self._hits += 1
        current_metrics().count("serve.disk_hit")

    def _miss(self) -> None:
        with self._lock:
            self._misses += 1
        current_metrics().count("serve.disk_miss")

    def _stored(self) -> None:
        with self._lock:
            self._stores += 1
        current_metrics().count("serve.disk_store")
        if self.max_bytes is not None:
            self._enforce_cap()

    def _entries(self) -> list[tuple[float, int, str]]:
        """(mtime, size, path) of every cache entry, oldest first."""
        out = []
        for sub in ("cleared", "partials"):
            d = os.path.join(self.root, sub)
            for name in os.listdir(d):
                if name.endswith(".tmp"):
                    continue
                path = os.path.join(d, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                out.append((st.st_mtime, st.st_size, path))
        out.sort()
        return out

    def size_bytes(self) -> int:
        """Total bytes currently stored (entries only, not locks)."""
        return sum(size for _, size, _ in self._entries())

    def _enforce_cap(self) -> None:
        """Evict least-recently-used entries until under ``max_bytes``."""
        with self.lock("evict"):
            entries = self._entries()
            total = sum(size for _, size, _ in entries)
            evicted = 0
            for _, size, path in entries:
                if total <= self.max_bytes:
                    break
                with contextlib.suppress(OSError):
                    os.unlink(path)
                    total -= size
                    evicted += 1
        if evicted:
            with self._lock:
                self._evictions += evicted
            current_metrics().count("serve.disk_evict", evicted)


class PersistentFrameCache(FrameCache):
    """A :class:`FrameCache` that spills cleared states through a
    :class:`DiskCache`.

    Lookups fall through memory to disk before computing and computes are
    written back under the per-key file lock.  The lock covers only the
    disk fetch/store, so a racing process may duplicate a compute, but
    every store re-verifies the entry first: the key converges on a
    single value and nobody ever blocks behind another process's clear.
    """

    def __init__(self, disk: DiskCache):
        super().__init__()
        self.disk = disk

    def _fetch(self, base_key: str, region: RegionRect) -> ClearedState | None:
        return self.disk.load_cleared(base_key, region)

    def _store(self, base_key: str, region: RegionRect, value: ClearedState) -> None:
        self.disk.store_cleared(base_key, region, value)

    def _compute_lock(self, base_key: str, region: RegionRect) -> AbstractContextManager:
        return self.disk.lock(f"cleared-{base_key[:32]}-{region_tag(region)}")
