"""The generation service: one long-lived base, many client requests.

:class:`GenerationService` is the synchronous core the async scheduler
and the wire protocol sit on.  It owns one :class:`~repro.batch.BatchJpg`
(the base bitstream parsed once, the full-stream size measured once), a
disk-backed :class:`~repro.serve.diskcache.PersistentFrameCache` for
cleared-region sharing, and a :class:`~repro.serve.diskcache.DiskCache`
of finished partials — so repeated requests are answered from disk
byte-identically, even across restarts or from a second process.

Requests are plain data (:class:`GenRequest`): XDL text, optional UCF
text, optional explicit region, granularity.  The request **digest**
hashes all of it, and the partial cache key is ``(base fingerprint,
region footprint, request digest)`` — three coordinates that completely
determine the output bytes, which is what makes serving from disk safe.

With an ``xhwif`` attached the service also deploys each generated (or
disk-served) partial to the board through a retrying
:class:`~repro.runtime.ReconfigSession` — the paper's "option 2" as a
service feature (deploy-on-generate).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass

from ..batch.cache import FrameCache, fingerprint
from ..batch.engine import BatchItem, BatchJpg
from ..bitstream.bitfile import BitFile
from ..bitstream.frames import FrameMemory
from ..core.jpg import JpgOptions
from ..core.partial import Granularity
from ..errors import UsageError
from ..exec.backend import Backend
from ..flow.floorplan import RegionRect
from ..flow.ncd import NcdDesign
from ..obs import Metrics, use_metrics
from ..runtime import ReconfigSession, RetryPolicy
from .diskcache import DiskCache, PersistentFrameCache


@dataclass(frozen=True)
class GenRequest:
    """One client request: everything needed to generate one partial.

    All fields are text so requests survive JSON serialization unchanged;
    :meth:`digest` hashes the canonical JSON form, making equal requests
    collapse onto one cache entry (and one in-flight generation).
    """

    name: str
    xdl: str
    ucf: str | None = None
    region: str | None = None          # UCF range text, e.g. "CLB_R1C3:CLB_R16C12"
    granularity: str = "column"

    def digest(self) -> str:
        """Content digest over every request field (the module key)."""
        canonical = json.dumps(
            {
                "name": self.name,
                "xdl": self.xdl,
                "ucf": self.ucf,
                "region": self.region,
                "granularity": self.granularity,
            },
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def region_rect(self) -> RegionRect | None:
        """The explicit region, parsed (None when only the UCF names one)."""
        if self.region is None:
            return None
        return RegionRect.from_ucf(self.region)

    def to_item(self, *, check_interface: bool) -> BatchItem:
        """The engine-level :class:`BatchItem` this request describes."""
        if self.granularity not in ("column", "frame"):
            raise UsageError(
                f"granularity must be 'column' or 'frame', got {self.granularity!r}"
            )
        return BatchItem(
            name=self.name,
            module=self.xdl,
            region=self.region_rect(),
            ucf=self.ucf,
            options=JpgOptions(
                granularity=Granularity(self.granularity),
                check_interface=check_interface,
            ),
        )


@dataclass
class ServeResult:
    """One served request: the partial bytes (or the error) and provenance."""

    request: GenRequest
    data: bytes | None
    seconds: float
    source: str                       # "generated" | "disk" | "peer"
    frames: int = 0
    error: str | None = None
    deployed: bool = False

    @property
    def ok(self) -> bool:
        """True when the request produced bytes (no error)."""
        return self.error is None

    @property
    def size(self) -> int:
        """Size of the served partial in bytes (0 on error)."""
        return len(self.data) if self.data is not None else 0


class GenerationService:
    """Serve partial-bitstream generations against one base design."""

    def __init__(
        self,
        part: str,
        base_bitstream: bytes | BitFile | FrameMemory,
        base_design: NcdDesign | None = None,
        *,
        cache_dir: str | None = None,
        max_cache_bytes: int | None = None,
        metrics: Metrics | None = None,
        xhwif=None,
        retry: RetryPolicy | None = None,
        lint: bool = False,
        sanctioned: list[RegionRect] | None = None,
        backend: str | Backend = "thread",
        peer_fetch=None,
    ):
        """``backend`` picks how generations execute (see
        :mod:`repro.exec`): ``"thread"`` runs them inline on the
        scheduler's threads, ``"process"`` fans them out to a pool of
        worker processes over a shared-memory base.  ``sanctioned``
        (with ``lint``) arms the gate's tamper rules: served partials
        must stay inside the policy regions and must not edit routing
        relative to the service's own base configuration.

        ``peer_fetch`` is the cluster's two-tier cache seam: a callable
        ``(base_key, region_tag, digest) -> bytes | None`` tried after a
        local disk miss and *before* generating.  Bytes it returns are
        stored into the local disk cache (warming tier 1) and served with
        ``source="peer"``; ``None`` falls through to generation.  See
        :mod:`repro.cluster`."""
        self.metrics = metrics if metrics is not None else Metrics(keep_events=False)
        self.disk: DiskCache | None = (
            DiskCache(cache_dir, max_bytes=max_cache_bytes) if cache_dir else None
        )
        cache = PersistentFrameCache(self.disk) if self.disk else FrameCache()
        with use_metrics(self.metrics):
            self.engine = BatchJpg(
                part,
                base_bitstream,
                base_design=base_design,
                cache=cache,
                metrics=self.metrics,
                backend=backend,
            )
        self.part = part
        self.base_design = base_design
        #: content key of the base configuration every request generates against
        self.base_key = fingerprint(self.engine.base_frames)
        self.peer_fetch = peer_fetch
        self._session = (
            ReconfigSession(xhwif, policy=retry) if xhwif is not None else None
        )
        self._gate = None
        if lint or sanctioned is not None:
            from ..analyze import PreDeployGate

            self._gate = PreDeployGate(
                part,
                golden=(self.engine.base_frames
                        if sanctioned is not None else None),
                sanctioned=sanctioned,
            )

    @property
    def full_size(self) -> int:
        """Byte size of a complete configuration for this base."""
        return self.engine.full_size

    @property
    def cache_stats(self):
        """The engine's frame-cache hit/miss counters."""
        return self.engine.cache.stats

    def partial_key(self, request: GenRequest) -> tuple[str, str, str]:
        """The (base fingerprint, region tag, module digest) cache key."""
        from .diskcache import region_tag

        return self.base_key, region_tag(request.region_rect()), request.digest()

    # -- the serving path -----------------------------------------------------

    def generate(self, request: GenRequest) -> ServeResult:
        """Serve one request: from the partial disk cache when possible,
        through the shared-base engine otherwise.  Generation *failures*
        come back on the result (``error``), not as exceptions."""
        start = time.perf_counter()
        with use_metrics(self.metrics):
            region = request.region_rect()
            if self.disk is not None:
                data = self.disk.load_partial(
                    self.base_key, region, request.digest()
                )
                if data is not None:
                    self.metrics.count("serve.served_from_disk")
                    result = ServeResult(
                        request, data, time.perf_counter() - start, "disk"
                    )
                    if self._lint_ok(result):
                        self._maybe_deploy(result)
                    return result
            if self.peer_fetch is not None:
                data = self._try_peer_fill(request, region)
                if data is not None:
                    result = ServeResult(
                        request, data, time.perf_counter() - start, "peer"
                    )
                    if self._lint_ok(result):
                        self._maybe_deploy(result)
                    return result
            item = request.to_item(check_interface=self.base_design is not None)
            with self.metrics.stage("serve.generate", module=request.name):
                item_result = self.engine.run_one(item)
            if not item_result.ok:
                self.metrics.count("serve.failures")
                return ServeResult(
                    request, None, time.perf_counter() - start, "generated",
                    error=item_result.error,
                )
            partial = item_result.result
            assert partial is not None
            if self.disk is not None:
                self.disk.store_partial(
                    self.base_key, region, request.digest(), partial.data
                )
            self.metrics.count("serve.generated")
            result = ServeResult(
                request, partial.data, time.perf_counter() - start, "generated",
                frames=len(partial.frames),
            )
            if self._lint_ok(result):
                self._maybe_deploy(result)
            return result

    def _try_peer_fill(self, request: GenRequest, region) -> bytes | None:
        """Tier-2 lookup: ask the key's owning peer for its cached bytes.

        A hit warms the local disk cache (tier 1) before being served, so
        a re-sharded or restarted fleet converges back to disk-speed
        without regenerating.  Any peer failure degrades to a miss — the
        generation path below is always available."""
        from .diskcache import region_tag

        tag = region_tag(region)
        with self.metrics.stage("serve.peer_fill", module=request.name):
            try:
                data = self.peer_fetch(self.base_key, tag, request.digest())
            except Exception:
                self.metrics.count("serve.peer_errors")
                return None
        if data is None:
            self.metrics.count("serve.peer_miss")
            return None
        self.metrics.count("serve.served_from_peer")
        if self.disk is not None:
            self.disk.store_partial_tag(self.base_key, tag, request.digest(), data)
        return data

    def fetch_partial(self, base_key: str, tag: str, digest: str) -> bytes | None:
        """Answer a peer's ``fetch`` op from the local disk cache only.

        Never generates: peer fill is strictly a cache-to-cache transfer,
        so a fleet-wide cold key costs exactly one generation (on the
        node the router picked), not a fan-out.  Keys against a different
        base configuration are a miss by definition."""
        if self.disk is None or base_key != self.base_key:
            self.metrics.count("serve.fetch_miss")
            return None
        data = self.disk.load_partial_tag(base_key, tag, digest)
        self.metrics.count("serve.fetch_hit" if data is not None
                           else "serve.fetch_miss")
        return data

    def _lint_ok(self, result: ServeResult) -> bool:
        """Pre-serve gate: statically analyze the bytes about to leave.

        Catches corrupt disk-cache entries and generation defects alike;
        a blocked request comes back as an error result, never as raw
        bytes.  With no gate configured this is a no-op."""
        if self._gate is None or result.data is None:
            return True
        from ..analyze import LintTarget
        from ..errors import AnalysisError, ReproError

        request = result.request
        design = None
        constraints = None
        try:
            from ..xdl.parser import parse_xdl_cached

            design = parse_xdl_cached(request.xdl)
        except ReproError:
            design = None                 # stream rules still apply
        if request.ucf:
            try:
                from ..ucf.parser import parse_ucf

                constraints = parse_ucf(request.ucf).constraints
            except ReproError:
                constraints = None
        target = LintTarget(
            request.name, data=result.data, region=request.region_rect(),
            design=design, constraints=constraints,
        )
        try:
            with self.metrics.stage("serve.lint", module=request.name):
                self._gate.require([target])
        except AnalysisError as exc:
            result.error = f"lint: {exc}"
            result.data = None            # never hand out blocked bytes
            self.metrics.count("serve.lint_blocked")
            return False
        return True

    def _maybe_deploy(self, result: ServeResult) -> None:
        """Deploy-on-generate: push a served partial to the attached board."""
        if self._session is None or result.data is None:
            return
        with use_metrics(self.metrics):
            outcome = self._session.send(result.data, label=result.request.name)
        if not outcome.ok:
            result.error = f"deploy failed: {outcome.error}"
            self.metrics.count("serve.deploy_failures")
            return
        result.deployed = True
        self.metrics.count("serve.deploys")

    def close(self) -> None:
        """Release the engine's execution backend (process pool, shared
        memory).  Idempotent; thread-backed services hold nothing."""
        self.engine.close()

    def stats(self) -> dict:
        """A JSON-ready snapshot for the ``stats`` protocol op."""
        cs = self.cache_stats
        snap = self.metrics.snapshot()
        out = {
            "part": self.part,
            "base_key": self.base_key,
            "full_size": self.full_size,
            "frame_cache": {"hits": cs.hits, "misses": cs.misses},
            "counters": {
                k: v for k, v in sorted(snap["counters"].items())
                if k.startswith(("serve.", "framecache.", "batch.", "analyze.",
                                 "exec.", "cluster."))
            },
            "gauges": snap["gauges"],
            "latency": {
                name: {k: (round(1e3 * v, 3) if k != "count" else v)
                       for k, v in row.items()}
                for name, row in self.metrics.latency_summary("serve.").items()
            },
        }
        if self.disk is not None:
            ds = self.disk.stats
            out["disk"] = {
                "root": self.disk.root,
                "hits": ds.hits,
                "misses": ds.misses,
                "stores": ds.stores,
                "evictions": ds.evictions,
                "bytes": self.disk.size_bytes(),
            }
        return out
