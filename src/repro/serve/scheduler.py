"""Async scheduler: bounded queueing, per-region ordering, coalescing.

The scheduler turns the synchronous :class:`GenerationService` into a
multi-client front: requests arrive on the event loop, generations run on
a worker thread pool, and three policies shape the traffic:

* **Backpressure** — at most ``max_queue`` requests may be pending; a
  request beyond that is rejected immediately with a
  :class:`~repro.errors.QueueFullError` naming the reason, instead of
  growing an unbounded backlog.
* **Per-region ordering** — requests targeting the same region execute
  in submission order (chained futures), so a client swapping a region
  twice observes its own order; independent regions run concurrently up
  to ``workers``.
* **Request coalescing** — while a request is in flight, an identical
  request (same cache key: base fingerprint + region + module digest)
  does not enqueue a second generation; it awaits the same future.  This
  extends :class:`~repro.batch.cache.FrameCache` single-flight semantics
  from "one clear per region" to "one generation per identical request"
  across clients.

Shutdown is graceful: :meth:`Scheduler.drain` stops intake (new submits
are rejected) and waits for every in-flight request to finish, so no
accepted request is ever dropped.

Metrics (``serve.*`` on the service's registry): ``serve.queue_depth``
gauge, ``serve.wait`` / ``serve.generate`` timers, ``serve.accepted`` /
``serve.rejected`` / ``serve.coalesced`` counters.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from ..errors import QueueFullError
from ..exec import default_workers
from .service import GenerationService, GenRequest, ServeResult


class Scheduler:
    """Bounded, region-ordered, coalescing front of a generation service.

    All methods must be called from one running event loop (the server's);
    the blocking generation work happens on the internal thread pool.
    ``workers=None`` sizes that pool from the service's execution backend
    when it owns a pool of known size (``backend.planned_workers()`` — so
    a warm pool gets exactly one shepherd thread per pool worker), falling
    back to :func:`repro.exec.default_workers` (``JPG_WORKERS``, then CPU
    count) — the same policy the batch engine uses.  When the service
    runs a process or warm backend, these threads only shepherd requests
    into the worker pool; the event loop itself stays single-threaded
    either way.
    """

    def __init__(
        self,
        service: GenerationService,
        *,
        max_queue: int = 32,
        workers: int | None = None,
    ):
        if max_queue < 1:
            raise QueueFullError(f"max_queue must be >= 1, got {max_queue}")
        if workers is None:
            workers = service.engine.backend.planned_workers() or default_workers()
        self.service = service
        self.metrics = service.metrics
        self.max_queue = max_queue
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="jpg-serve"
        )
        self._sem = asyncio.Semaphore(workers)
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._region_tail: dict[str, asyncio.Future] = {}
        self._tasks: set[asyncio.Task] = set()
        self._pending = 0
        self._draining = False

    # -- intake ---------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests accepted but not yet completed."""
        return self._pending

    @property
    def draining(self) -> bool:
        """True once shutdown began (new submits are rejected)."""
        return self._draining

    async def submit(self, request: GenRequest) -> ServeResult:
        """Schedule one request and await its result.

        Raises :class:`QueueFullError` when the queue is full or the
        scheduler is draining; generation *failures* come back on the
        result's ``error`` field like everywhere else.
        """
        if self._draining:
            self.metrics.count("serve.rejected")
            raise QueueFullError("service is draining (shutdown in progress)")
        key = self.service.partial_key(request)
        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.count("serve.coalesced")
            # shield: one impatient client cancelling must not cancel the
            # generation other clients are waiting on
            return await asyncio.shield(existing)
        if self._pending >= self.max_queue:
            self.metrics.count("serve.rejected")
            raise QueueFullError(
                f"queue full: {self._pending} request(s) pending "
                f"(max {self.max_queue})"
            )
        self.metrics.count("serve.accepted")
        self._pending += 1
        self.metrics.gauge("serve.queue_depth", self._pending)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        region = request.region or "-"
        ahead = self._region_tail.get(region)
        self._region_tail[region] = future
        task = loop.create_task(self._run(request, key, region, ahead, future))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return await asyncio.shield(future)

    async def _run(
        self,
        request: GenRequest,
        key: tuple,
        region: str,
        ahead: asyncio.Future | None,
        future: asyncio.Future,
    ) -> None:
        submitted = time.perf_counter()
        try:
            if ahead is not None:
                # per-region FIFO: wait for the previous request targeting
                # this region, whatever became of it
                await asyncio.wait([ahead])
            async with self._sem:
                self.metrics.record(
                    "serve.wait", time.perf_counter() - submitted, name=request.name
                )
                loop = asyncio.get_running_loop()
                result = await loop.run_in_executor(
                    self._pool, self.service.generate, request
                )
            future.set_result(result)
        except BaseException as exc:  # pragma: no cover - defensive
            if not future.done():
                future.set_exception(exc)
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
        finally:
            self._pending -= 1
            self.metrics.gauge("serve.queue_depth", self._pending)
            if self._inflight.get(key) is future:
                del self._inflight[key]
            if self._region_tail.get(region) is future:
                del self._region_tail[region]

    # -- shutdown -------------------------------------------------------------

    async def drain(self) -> int:
        """Stop intake and wait for every in-flight request; returns the
        number of requests that were still pending when draining began."""
        self._draining = True
        pending = self._pending
        while self._tasks:
            await asyncio.wait(set(self._tasks))
        return pending

    async def aclose(self) -> None:
        """Drain, then release the worker pool."""
        await self.drain()
        self._pool.shutdown(wait=True)
