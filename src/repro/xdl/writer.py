"""XDL writer: the ASCII twin of the NCD database.

Produces the statement shapes the paper quotes (§3.2.2): ``design``,
``inst ... "SLICE", placed R3C23 CLB_R3C23.S0, cfg "..."``, and ``net``
statements with ``outpin``/``inpin``/``pip`` clauses.  Like real XDL the
text is *physical*: LUT truth tables are written post pin-assignment
(``pin_map`` already applied), and net pins are physical slice pins
(``F3``), so a parsed design reproduces the same frames bit for bit.
"""

from __future__ import annotations

import io

from ..devices import packaged_name, slice_site_name
from ..devices.wires import PIP_TABLE
from ..errors import FlowError
from ..flow.ncd import Bel, NcdDesign, SliceComp
from ..netlist.library import expand_init


def _slice_cfg(comp: SliceComp) -> str:
    """The cfg attribute string of a SLICE inst."""
    parts: list[str] = []
    for bel in (comp.bels["F"], comp.bels["G"]):
        if bel.lut_cell is not None:
            init = physical_init(bel)
            parts.append(f"{bel.letter}:{bel.lut_cell}:#LUT:0x{init:04X}")
        if bel.ff_cell is not None:
            which = "FFX" if bel.letter == "F" else "FFY"
            parts.append(f"{which}:{bel.ff_cell}:#FF")
            parts.append(f"INIT{'X' if bel.letter == 'F' else 'Y'}::{bel.ff_init}")
            dmux = "DXMUX" if bel.letter == "F" else "DYMUX"
            parts.append(f"{dmux}::{0 if bel.ff_d_from_lut else 1}")
    has_ff = any(b.ff_cell for b in comp.bels.values())
    if has_ff:
        sync = any(b.ff_cell and b.ff_sync for b in comp.bels.values())
        parts.append(f"SYNC_ATTR::{'SYNC' if sync else 'ASYNC'}")
        parts.append(f"CEMUX::{'CE' if comp.ce_net else '1'}")
        parts.append(f"SRMUX::{'SR' if comp.sr_net else '0'}")
        parts.append("CKINV::0")
    return " ".join(parts)


def physical_init(bel: Bel) -> int:
    """LUT truth table over physical pins F1..F4 (pin_map applied)."""
    if bel.lut_cell is None:
        return 0
    pin_map = bel.pin_map or list(range(bel.lut_width))
    if len(pin_map) != bel.lut_width or -1 in pin_map:
        raise FlowError(f"bel {bel.lut_cell}: incomplete pin map {pin_map}")
    return expand_init(bel.lut_init, bel.lut_width, 4, pin_map)


def write_xdl(design: NcdDesign) -> str:
    """Serialize a placed (and possibly routed) design to XDL text."""
    out = io.StringIO()
    part = packaged_name(design.part)
    out.write(f'design "{design.name}" {part} v1.0 ;\n\n')

    for comp in design.slices.values():
        if comp.site is None:
            raise FlowError(f"cannot write XDL for unplaced component {comp.name}")
        r, c, s = comp.site
        rc = f"R{r + 1}C{c + 1}"
        out.write(
            f'inst "{comp.name}" "SLICE", placed {rc} {slice_site_name(r, c, s)},\n'
            f'  cfg "{_slice_cfg(comp)}"\n  ;\n'
        )
    for iob in design.iobs.values():
        if iob.site is None:
            raise FlowError(f"cannot write XDL for unplaced IOB {iob.name}")
        dirn = "I" if iob.direction == "in" else "O"
        out.write(
            f'inst "{iob.name}" "IOB", placed {iob.site.name} {iob.site.name},\n'
            f'  cfg "IOMUX::{dirn} PORT::{iob.port}"\n  ;\n'
        )
    for g in design.gclks.values():
        out.write(
            f'inst "{g.name}" "GCLK", placed GCLKPAD{g.index} GCLKPAD{g.index},\n'
            f'  cfg "INDEX::{g.index} PORT::{g.port}"\n  ;\n'
        )
    out.write("\n")

    for net in design.nets.values():
        kind = " clk" if net.is_clock else ""
        out.write(f'net "{net.name}"{kind},\n')
        out.write(f'  outpin "{net.source.comp}" {_pin_text(design, net.source.comp, net.source.pin, None)},\n')
        for sink in net.sinks:
            pin = _sink_pin_text(design, sink)
            out.write(f'  inpin "{sink.ref.comp}" {pin},\n')
        for r, c, p in net.pips:
            pip = PIP_TABLE[p]
            out.write(f"  pip R{r + 1}C{c + 1} {pip.src_name} -> {pip.dst_name},\n")
        out.write("  ;\n")
    return out.getvalue()


def _pin_text(design: NcdDesign, comp: str, pin: str, phys: str | None) -> str:
    if pin in ("PAD_IN", "PAD_OUT"):
        return "PAD"
    if pin == "GCLK":
        return "GCLK"
    return pin


def _sink_pin_text(design: NcdDesign, sink) -> str:
    ref = sink.ref
    if ref.pin in ("F", "G"):
        if sink.phys_pin is None:
            raise FlowError(
                f"cannot write XDL for unrouted LUT sink {ref.comp}.{ref.pin}"
            )
        # phys_pin is e.g. "S0_F3" -> XDL pin "F3"
        return sink.phys_pin.split("_", 1)[1]
    return _pin_text(design, ref.comp, ref.pin, sink.phys_pin)


def save_xdl(design: NcdDesign, path: str) -> None:
    with open(path, "w") as f:
        f.write(write_xdl(design))
