"""XDL parser: ASCII implementation text -> :class:`NcdDesign`.

Accepts the subset :mod:`repro.xdl.writer` emits — which is also the shape
the paper's §3.2.2 example uses.  The result is a *physical-form* design
(LUT truth tables over physical pins, identity pin maps); bitgen produces
identical frames for written-then-parsed designs, which is the invariant
the test suite checks.
"""

from __future__ import annotations

import hashlib
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..devices import parse_iob_site, parse_slice_site
from ..devices.wires import pip_by_wires
from ..errors import XdlParseError
from ..flow.ncd import GclkComp, IobComp, NcdDesign, PhysNet, PinRef, SinkRef

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<string>"[^"]*")
  | (?P<arrow>->)
  | (?P<punct>[,;])
  | (?P<word>[^\s,;"]+)
    """,
    re.VERBOSE,
)


@dataclass
class _Tok:
    kind: str
    text: str
    line: int


def _tokenize(text: str) -> list[_Tok]:
    tokens: list[_Tok] = []
    line = 1
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise XdlParseError(f"cannot tokenize near {text[pos:pos + 20]!r}", line)
        kind = m.lastgroup
        chunk = m.group()
        if kind in ("ws", "comment"):
            line += chunk.count("\n")
        elif kind == "string":
            tokens.append(_Tok("string", chunk[1:-1], line))
            line += chunk.count("\n")
        else:
            tokens.append(_Tok(kind, chunk, line))
        pos = m.end()
    return tokens


class XdlParser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token helpers ----------------------------------------------------------

    def _peek(self) -> _Tok | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self, expect_kind: str | None = None, expect_text: str | None = None) -> _Tok:
        tok = self._peek()
        if tok is None:
            raise XdlParseError("unexpected end of XDL input")
        if expect_kind and tok.kind != expect_kind:
            raise XdlParseError(
                f"expected {expect_kind}, got {tok.kind} {tok.text!r}", tok.line
            )
        if expect_text and tok.text != expect_text:
            raise XdlParseError(f"expected {expect_text!r}, got {tok.text!r}", tok.line)
        self.pos += 1
        return tok

    def _accept(self, text: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.text == text and tok.kind in ("word", "punct", "arrow"):
            self.pos += 1
            return True
        return False

    def _skip_to_semicolon(self) -> None:
        while self._peek() is not None and not self._accept(";"):
            self.pos += 1

    # -- grammar ---------------------------------------------------------------------

    def parse(self) -> NcdDesign:
        design = self._design_stmt()
        while self._peek() is not None:
            tok = self._next("word")
            if tok.text == "inst":
                self._inst_stmt(design)
            elif tok.text == "net":
                self._net_stmt(design)
            else:
                raise XdlParseError(f"unknown statement {tok.text!r}", tok.line)
        self._fixup(design)
        return design

    def _design_stmt(self) -> NcdDesign:
        self._next("word", "design")
        name = self._next("string").text
        part = self._next("word").text
        # optional version word and cfg
        while not self._accept(";"):
            self._next()
        return NcdDesign(name, _canonical_part(part))

    def _inst_stmt(self, design: NcdDesign) -> None:
        name = self._next("string").text
        itype = self._next("string").text
        self._next("punct", ",")
        placed = None
        cfg = ""
        while not self._accept(";"):
            tok = self._next()
            if tok.kind == "word" and tok.text == "placed":
                tile = self._next("word").text  # tile name, informational
                site = self._next("word").text
                placed = (tile, site)
            elif tok.kind == "word" and tok.text == "unplaced":
                placed = None
            elif tok.kind == "word" and tok.text == "cfg":
                cfg = self._next("string").text
            elif tok.kind == "punct" and tok.text == ",":
                continue
            else:
                raise XdlParseError(f"unexpected {tok.text!r} in inst", tok.line)
        if itype == "SLICE":
            self._make_slice(design, name, placed, cfg)
        elif itype == "IOB":
            self._make_iob(design, name, placed, cfg)
        elif itype == "GCLK":
            self._make_gclk(design, name, cfg)
        else:
            raise XdlParseError(f"unknown inst type {itype!r} for {name!r}")

    def _make_slice(self, design: NcdDesign, name: str, placed, cfg: str) -> None:
        from ..flow.ncd import SliceComp
        from ..flow.pack import module_prefix

        comp = SliceComp(name, group=module_prefix(name) or None)
        if placed is not None:
            comp.site = parse_slice_site(placed[1])
        attrs = _parse_cfg(cfg)
        for letter in ("F", "G"):
            bel = comp.bels[letter]
            lut = attrs.get(letter)
            if lut is not None:
                cell, value = lut
                if not value.startswith("#LUT:0x"):
                    raise XdlParseError(f"{name}: bad LUT cfg {value!r}")
                bel.lut_cell = cell
                bel.lut_init = int(value[7:], 16)
                bel.lut_width = 4
                bel.lut_inputs = ["", "", "", ""]
                bel.pin_map = [0, 1, 2, 3]
            which = "FFX" if letter == "F" else "FFY"
            ff = attrs.get(which)
            if ff is not None:
                cell, value = ff
                bel.ff_cell = cell
                init = attrs.get("INITX" if letter == "F" else "INITY")
                bel.ff_init = int(init[1]) if init else 0
                dmux = attrs.get("DXMUX" if letter == "F" else "DYMUX")
                bel.ff_d_from_lut = bool(dmux) and dmux[1] == "0"
                sync = attrs.get("SYNC_ATTR")
                bel.ff_sync = (sync is None) or sync[1] == "SYNC"
        # CE/SR nets are attached when net statements arrive; the cfg only
        # records whether the muxes select the pin
        comp._cfg_ce = attrs.get("CEMUX", ("", "1"))[1] == "CE"  # type: ignore[attr-defined]
        comp._cfg_sr = attrs.get("SRMUX", ("", "0"))[1] == "SR"  # type: ignore[attr-defined]
        design.slices[name] = comp

    def _make_iob(self, design: NcdDesign, name: str, placed, cfg: str) -> None:
        attrs = _parse_cfg(cfg)
        iomux = attrs.get("IOMUX")
        if iomux is None:
            raise XdlParseError(f"IOB {name!r}: missing IOMUX cfg")
        direction = "in" if iomux[1] == "I" else "out"
        port = attrs.get("PORT", ("", name))[1]
        iob = IobComp(name, direction, port, net="")
        if placed is not None:
            iob.site = parse_iob_site(placed[1])
        design.iobs[name] = iob

    def _make_gclk(self, design: NcdDesign, name: str, cfg: str) -> None:
        attrs = _parse_cfg(cfg)
        idx = attrs.get("INDEX")
        port = attrs.get("PORT", ("", name))[1]
        g = GclkComp(name, port, net="")
        if idx is not None:
            g.index = int(idx[1])
        design.gclks[name] = g

    def _net_stmt(self, design: NcdDesign) -> None:
        name = self._next("string").text
        is_clock = False
        if self._accept("clk"):
            is_clock = True
        self._next("punct", ",")
        source: PinRef | None = None
        sinks: list[SinkRef] = []
        pips: list[tuple[int, int, int]] = []
        while not self._accept(";"):
            tok = self._next()
            if tok.kind == "punct" and tok.text == ",":
                continue
            if tok.kind != "word":
                raise XdlParseError(f"unexpected {tok.text!r} in net", tok.line)
            if tok.text == "outpin":
                comp = self._next("string").text
                pin = self._next("word").text
                source = self._out_ref(design, comp, pin, tok.line)
            elif tok.text == "inpin":
                comp = self._next("string").text
                pin = self._next("word").text
                sinks.append(self._in_ref(design, comp, pin, name, tok.line))
            elif tok.text == "pip":
                tile = self._next("word").text
                src = self._next("word").text
                self._next("arrow")
                dst = self._next("word").text
                m = re.match(r"^R(\d+)C(\d+)$", tile)
                if not m:
                    raise XdlParseError(f"bad pip tile {tile!r}", tok.line)
                pip = pip_by_wires(src, dst)
                pips.append((int(m.group(1)) - 1, int(m.group(2)) - 1, pip.index))
            else:
                raise XdlParseError(f"unexpected {tok.text!r} in net", tok.line)
        if source is None:
            raise XdlParseError(f"net {name!r} has no outpin")
        net = PhysNet(name, source, sinks, pips, routed=bool(pips) or not sinks,
                      is_clock=is_clock)
        design.nets[name] = net

    # -- pin reference resolution ----------------------------------------------------------

    def _out_ref(self, design: NcdDesign, comp: str, pin: str, line: int) -> PinRef:
        if comp in design.iobs:
            if pin != "PAD":
                raise XdlParseError(f"IOB outpin must be PAD, got {pin!r}", line)
            return PinRef(comp, "PAD_IN")
        if comp in design.gclks:
            return PinRef(comp, "GCLK")
        if comp in design.slices:
            if pin not in ("X", "Y", "XQ", "YQ"):
                raise XdlParseError(f"bad slice output pin {pin!r}", line)
            return PinRef(comp, pin)
        raise XdlParseError(f"outpin references unknown inst {comp!r}", line)

    def _in_ref(self, design: NcdDesign, comp: str, pin: str, net: str, line: int) -> SinkRef:
        if comp in design.iobs:
            if pin != "PAD":
                raise XdlParseError(f"IOB inpin must be PAD, got {pin!r}", line)
            return SinkRef(PinRef(comp, "PAD_OUT"))
        if comp not in design.slices:
            raise XdlParseError(f"inpin references unknown inst {comp!r}", line)
        scomp = design.slices[comp]
        s = scomp.site[2] if scomp.site else 0
        m = re.match(r"^([FG])([1-4])$", pin)
        if m:
            letter, idx = m.group(1), int(m.group(2)) - 1
            bel = scomp.bels[letter]
            if bel.lut_cell is not None and idx < 4:
                bel.lut_inputs[idx] = net
            return SinkRef(PinRef(comp, letter, idx), phys_pin=f"S{s}_{pin}")
        if pin in ("BX", "BY", "CE", "SR", "CLK"):
            return SinkRef(PinRef(comp, pin), phys_pin=f"S{s}_{pin}")
        raise XdlParseError(f"bad slice input pin {pin!r}", line)

    # -- post-pass --------------------------------------------------------------------------

    def _fixup(self, design: NcdDesign) -> None:
        """Attach net names to components (IOB/GCLK nets, slice clk/ce/sr)."""
        for net in design.nets.values():
            refs = [net.source] + [s.ref for s in net.sinks]
            for ref in refs:
                if ref.comp in design.iobs:
                    design.iobs[ref.comp].net = net.name
                elif ref.comp in design.gclks:
                    design.gclks[ref.comp].net = net.name
                elif ref.comp in design.slices:
                    comp = design.slices[ref.comp]
                    if ref.pin == "CLK":
                        comp.clk_net = net.name
                    elif ref.pin == "CE":
                        comp.ce_net = net.name
                    elif ref.pin == "SR":
                        comp.sr_net = net.name
        for comp in design.slices.values():
            # cfg consistency: CEMUX/SRMUX selected a pin that never arrived
            if getattr(comp, "_cfg_ce", False) and comp.ce_net is None:
                raise XdlParseError(f"{comp.name}: CEMUX::CE but no CE inpin")
            if getattr(comp, "_cfg_sr", False) and comp.sr_net is None:
                raise XdlParseError(f"{comp.name}: SRMUX::SR but no SR inpin")


def _canonical_part(part: str) -> str:
    from ..devices import normalize_part_name

    return normalize_part_name(part)


def _parse_cfg(cfg: str) -> dict[str, tuple[str, str]]:
    """Split a cfg string into {attr: (logical name, value)} entries.

    Entries look like ``ATTR:logical_name:value`` where either of the last
    two fields may be empty (``CKINV::1``) — and LUT entries carry a
    two-part value (``F:u1/c1:#LUT:0x8000``).
    """
    attrs: dict[str, tuple[str, str]] = {}
    for token in cfg.split():
        fields = token.split(":", 2)
        if len(fields) != 3:
            raise XdlParseError(f"bad cfg token {token!r}")
        attrs[fields[0]] = (fields[1], fields[2])
    return attrs


def parse_xdl(text: str) -> NcdDesign:
    """Parse XDL text into a physical-form design database."""
    return XdlParser(text).parse()


_PARSE_CACHE_MAX = 64  # not-a-frame-count
_parse_cache: OrderedDict[str, NcdDesign] = OrderedDict()
_parse_lock = threading.Lock()


def parse_xdl_cached(text: str) -> NcdDesign:
    """Memoized :func:`parse_xdl`, keyed by a content hash of the text.

    Regenerating the same module (repeated serve requests, a batch item
    retried on a new base, every worker of a pool parsing one manifest)
    pays for one parse.  The returned design is **shared**: callers must
    treat it as read-only, which everything downstream of
    :meth:`repro.core.jpg.Jpg.make_partial` already does.  The cache is
    process-local, thread-safe, and LRU-capped at ``_PARSE_CACHE_MAX``
    entries.
    """
    key = hashlib.sha256(text.encode()).hexdigest()
    with _parse_lock:
        design = _parse_cache.get(key)
        if design is not None:
            _parse_cache.move_to_end(key)
            return design
    design = parse_xdl(text)
    with _parse_lock:
        _parse_cache[key] = design
        _parse_cache.move_to_end(key)
        while len(_parse_cache) > _PARSE_CACHE_MAX:
            _parse_cache.popitem(last=False)
    return design


def clear_parse_cache() -> None:
    """Drop every memoized design (tests and long-lived services)."""
    with _parse_lock:
        _parse_cache.clear()


def load_xdl(path: str) -> NcdDesign:
    with open(path) as f:
        return parse_xdl(f.read())
