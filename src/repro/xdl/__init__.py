"""XDL front-end: the ASCII implementation format JPG consumes (the
equivalent of the Xilinx ``xdl`` utility's output)."""

from .parser import XdlParser, load_xdl, parse_xdl
from .writer import physical_init, save_xdl, write_xdl

__all__ = ["XdlParser", "load_xdl", "parse_xdl", "physical_init", "save_xdl", "write_xdl"]
