"""Region containment (the ``C*`` rule family).

The paper's safety argument is that a partial bitstream touches only the
configuration frames of its floorplanned region.  These checks prove it
from the decoded stream alone: every frame write must land in a column
the region *sanctions* — the region's own CLB columns, the clock column
(global clock state rides along with any partial), and, when the
module's physical design is available, the columns its boundary routing
legitimately spills into (IO nets to edge pads widen a partial's column
span; see :func:`repro.core.verify.check_module_in_region`).

Without a design there is no way to tell a sanctioned boundary spill
from a real escape, so out-of-region CLB writes degrade to warnings;
with a design they are errors.
"""

from __future__ import annotations

from ..devices import ColumnKind, Device
from ..flow.floorplan import RegionRect
from ..flow.ncd import NcdDesign, PhysNet
from .findings import Finding, Severity, rule
from .stream import StreamModel

C001 = rule("C001", "frame-outside-region", Severity.ERROR,
            "the partial writes CLB columns the declared region does not "
            "sanction; re-floorplan or fix the region declaration")
C002 = rule("C002", "unexpected-column-kind", Severity.WARNING,
            "the partial writes IOB/BRAM columns its design gives no "
            "reason to touch")
C003 = rule("C003", "region-exceeds-device", Severity.ERROR,
            "the declared region does not fit on the device; fix the "
            "RANGE constraint")


def net_is_sanctioned(design: NcdDesign, net: PhysNet) -> bool:
    """A boundary net allowed to cross the region edge: the clock tree,
    or any net with an IOB/GCLK terminal (module IO must reach pads)."""
    if net.is_clock:
        return True
    comps = {net.source.comp} | {s.ref.comp for s in net.sinks}
    return any(c in design.iobs or c in design.gclks for c in comps)


def sanctioned_route_columns(design: NcdDesign) -> set[int]:
    """CLB columns that sanctioned boundary nets route through."""
    cols: set[int] = set()
    for net in design.nets.values():
        if net_is_sanctioned(design, net):
            cols.update(col for _, col, _ in net.pips)
    return cols


def check_containment(
    device: Device,
    model: StreamModel,
    region: RegionRect,
    design: NcdDesign | None = None,
) -> list[Finding]:
    """Prove every frame write of ``model`` falls in ``region``."""
    findings: list[Finding] = []
    subject = model.subject
    if region.clip_to(device) != region:
        findings.append(Finding(
            C003, subject,
            f"region {region.to_ucf()} exceeds the {device.name} array "
            f"({device.rows}x{device.cols})",
        ))
        return findings

    allowed_clb = set(region.clb_columns())
    route_cols: set[int] = set()
    if design is not None:
        route_cols = sanctioned_route_columns(design)

    # one finding per offending column, not per frame
    offenders: dict[int, list] = {}
    kind_offenders: dict[str, list] = {}
    for w in model.writes:
        col = device.geometry.column(w.major)
        if col.kind is ColumnKind.CLOCK:
            continue
        if col.kind is ColumnKind.CLB:
            assert col.clb_col is not None
            if col.clb_col in allowed_clb or col.clb_col in route_cols:
                continue
            offenders.setdefault(col.clb_col, []).append(w)
        elif col.kind is ColumnKind.IOB:
            if design is None or design.iobs:
                continue
            kind_offenders.setdefault("IOB", []).append(w)
        else:                              # BRAM interconnect/content
            kind_offenders.setdefault(col.kind.value, []).append(w)

    severity = Severity.ERROR if design is not None else Severity.WARNING
    proof = ("not sanctioned by the design's boundary routing"
             if design is not None
             else "possibly boundary routing (no design to prove it)")
    for clb_col in sorted(offenders):
        writes = offenders[clb_col]
        first = writes[0]
        findings.append(Finding(
            C001, subject,
            f"{len(writes)} frame(s) written in CLB column {clb_col + 1}, "
            f"outside region {region.to_ucf()} ({proof})",
            severity=severity,
            frame=first.index,
            address=first.address,
        ))
    for kind in sorted(kind_offenders):
        writes = kind_offenders[kind]
        first = writes[0]
        findings.append(Finding(
            C002, subject,
            f"{len(writes)} frame(s) written in {kind} column(s) the "
            f"design does not use",
            frame=first.index,
            address=first.address,
        ))
    return findings
