"""R001 relocatability: prove a partial's effect survives a column shift.

A partial bitstream is *relocatable* when its effect is invariant under
shifting its CLB column span: retargeting it is then a pure FAR-major
rewrite plus CRC fixup (:mod:`repro.bitstream.relocate`), and the result
is byte-identical to regenerating the module at the target columns.

The proof obligations, checked against the decoded :class:`StreamModel`
through the spec's address algebra:

* the stream decodes completely with no blocking (error) findings — an
  effect recovered from a broken stream proves nothing;
* every frame write targets a CLB column: the clock column, the IOB edge
  columns, and the BRAM columns sit at spec-determined absolute
  positions, so writes there are position-pinned by definition;
* no written frame sets bits in the top/bottom IOB regions (the first
  and last 18-bit rows of a CLB frame configure that specific column's
  top/bottom pads — content there pins the frame to its column).

CLB frame counts are uniform across one device's columns (the spec's
``clb_frames``), so minors never change under a shift; the legal target
set is every start column where the span still fits on the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bitstream.relocate import rewrite_far_majors
from ..devices import Device
from ..devices.geometry import BITS_PER_ROW, ColumnKind
from ..errors import AnalysisError, BitstreamError, UsageError
from ..obs import current_metrics
from .findings import Finding, Severity, rule
from .stream import StreamModel, decode_stream

R001 = rule("R001", "not-relocatable", Severity.ERROR,
            "the stream's effect depends on its absolute column position "
            "(non-CLB columns or edge-pad bits); regenerate the module at "
            "the target region instead of relocating")


@dataclass
class RelocationProof:
    """Whether (and where) one partial may be relocated.

    ``columns`` is the sorted set of 0-based fabric columns the stream
    writes; ``legal_targets`` the 0-based start columns its span may be
    shifted to (including the current one).  ``reasons`` lists every
    refuted obligation when not relocatable.
    """

    subject: str
    relocatable: bool
    columns: list[int] = field(default_factory=list)
    legal_targets: list[int] = field(default_factory=list)
    reasons: list[str] = field(default_factory=list)

    @property
    def span(self) -> tuple[int, int] | None:
        """(first, last) written fabric column, when any CLB frame is
        written."""
        if not self.columns:
            return None
        return self.columns[0], self.columns[-1]


def _edge_bits_set(payload: bytes, rows: int) -> list[str]:
    """Which top/bottom IOB regions of a frame payload hold nonzero bits."""
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    regions = []
    if bits[:BITS_PER_ROW].any():
        regions.append("top")
    bottom = BITS_PER_ROW * (rows + 1)
    if bits[bottom:bottom + BITS_PER_ROW].any():
        regions.append("bottom")
    return regions


def prove_relocatable(device: Device, model: StreamModel) -> RelocationProof:
    """Prove (or refute) that a decoded partial is column-shift invariant."""
    g = device.geometry
    proof = RelocationProof(subject=model.subject, relocatable=False)
    if not model.decode_complete:
        proof.reasons.append("stream did not decode completely")
    if any(f.effective_severity is Severity.ERROR for f in model.findings):
        proof.reasons.append("stream has blocking lint findings")
    if not model.writes:
        proof.reasons.append("stream writes no frames")
    pinned_kinds: dict[str, int] = {}
    edge_columns: dict[str, set[int]] = {}
    columns: set[int] = set()
    for w in model.writes:
        col = g.column(w.major)
        if col.kind is not ColumnKind.CLB:
            pinned_kinds[col.kind.value] = pinned_kinds.get(col.kind.value, 0) + 1
            continue
        assert col.clb_col is not None
        columns.add(col.clb_col)
        for region in _edge_bits_set(w.payload, g.rows):
            edge_columns.setdefault(region, set()).add(col.clb_col)
    for kind, count in sorted(pinned_kinds.items()):
        proof.reasons.append(
            f"writes {count} frame(s) of the position-pinned {kind} column(s)"
        )
    for region, cols in sorted(edge_columns.items()):
        shown = ", ".join(str(c + 1) for c in sorted(cols)[:4])
        proof.reasons.append(
            f"{region} IOB pad bits set in CLB column(s) {shown}"
            + ("..." if len(cols) > 4 else "")
        )
    proof.columns = sorted(columns)
    if not proof.reasons:
        proof.relocatable = True
        width = proof.columns[-1] - proof.columns[0] + 1
        proof.legal_targets = list(range(g.cols - width + 1))
    current_metrics().count(
        "analyze.relocate.proved" if proof.relocatable
        else "analyze.relocate.refuted"
    )
    return proof


def check_relocatable(device: Device, model: StreamModel) -> list[Finding]:
    """R001: flag partials whose relocatability cannot be proven."""
    proof = prove_relocatable(device, model)
    if proof.relocatable:
        return []
    reasons = "; ".join(proof.reasons[:3])
    more = f" (+{len(proof.reasons) - 3} more)" if len(proof.reasons) > 3 else ""
    return [Finding(
        R001, model.subject,
        f"not relocatable: {reasons}{more}",
    )]


def relocate(device: Device, data: bytes, to_column: int, *,
             subject: str = "stream",
             model: StreamModel | None = None,
             proof: RelocationProof | None = None) -> bytes:
    """Retarget a proven-relocatable partial to start at ``to_column``.

    ``to_column`` is the 0-based fabric column the written span's first
    column moves to.  Raises :class:`AnalysisError` (carrying the R001
    finding) when the proof fails, :class:`UsageError` when the target
    span falls off the fabric.  The rewrite touches only FAR majors and
    CRC check words, so the result is byte-identical to regenerating the
    same frames at the target columns.
    """
    if model is None:
        model = decode_stream(device, data, subject=subject)
    if proof is None:
        proof = prove_relocatable(device, model)
    if not proof.relocatable:
        findings = check_relocatable(device, model) or [Finding(
            R001, model.subject, "; ".join(proof.reasons) or "not relocatable",
        )]
        raise AnalysisError(
            f"R001 {model.subject}: {findings[0].message}",
            findings=findings,
        )
    if to_column not in proof.legal_targets:
        lo, hi = proof.legal_targets[0], proof.legal_targets[-1]
        raise UsageError(
            f"target column {to_column + 1} is illegal for a "
            f"{proof.columns[-1] - proof.columns[0] + 1}-column span; legal "
            f"start columns are {lo + 1}..{hi + 1}"
        )
    g = device.geometry
    delta = to_column - proof.columns[0]
    if delta == 0:
        return data
    major_map = {
        g.major_of_clb_col(c): g.major_of_clb_col(c + delta)
        for c in proof.columns
    }
    out = rewrite_far_majors(data, major_map)
    _verify_relocation(device, model, out, delta)
    current_metrics().count("analyze.relocate.rewrites")
    return out


def _verify_relocation(device: Device, model: StreamModel, out: bytes,
                       delta: int) -> None:
    """Re-decode the rewritten stream and check it is the shifted effect."""
    shifted = decode_stream(device, out, subject=f"{model.subject}@shift")
    errors = [f for f in shifted.findings
              if f.effective_severity is Severity.ERROR]
    if errors or not shifted.decode_complete:
        raise BitstreamError(
            f"relocation produced an invalid stream: "
            f"{errors[0].message if errors else 'decode stopped early'}"
        )
    g = device.geometry
    expect = sorted(
        g.frame_index(g.shift_clb_major(w.major, delta), w.minor)
        for w in model.writes
    )
    got = sorted(w.index for w in shifted.writes)
    if expect != got:
        raise BitstreamError(
            "relocation produced an unexpected frame set (internal error)"
        )
