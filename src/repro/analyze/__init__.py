"""Static analysis of designs and partial bitstreams (``jpg lint``).

Four rule families, all checked without replaying anything on a device
model:

* ``S*`` — packet-stream lint (:mod:`.stream`): CRC mismatches, word
  alignment, read-only register writes, frame-count/header disagreement;
* ``C*`` — region containment (:mod:`.containment`): every decoded frame
  write must land in a column the declared region sanctions;
* ``X*`` — frame-conflict detection (:mod:`.conflict`): content-aware
  races between partials destined for concurrent deployment;
* ``N*`` — netlist/constraint lint (:mod:`.netlist`): placements outside
  their RANGE, unsanctioned region-crossing nets, antenna routes;
* ``T*`` — tamper detection (:mod:`.tamper`): frame writes outside every
  sanctioned region, routing edits relative to a golden base, and
  readback-vs-golden drift (needs the ``sanctioned``/``golden`` inputs);
* ``R*`` — semantic analysis (:mod:`.semantics`, :mod:`.relocate`): the
  stream's device-relative frame-state *effect*, with R001
  relocatability proofs (column-shift invariance + FAR-rewrite
  relocation), R002 pairwise independence/commutativity, and R003
  canonicalization (dead/redundant-write elimination with re-CRC).

:class:`RuleEngine` runs whatever the available inputs support;
:class:`PreDeployGate` turns blocking findings into
:class:`~repro.errors.AnalysisError` for the runtime/serve layers.  The
rule catalog is documented in ``docs/ANALYSIS.md``.
"""

from .conflict import check_conflicts, check_duplicates
from .containment import check_containment, sanctioned_route_columns
from .engine import LintTarget, RuleEngine, lint_partial
from .findings import RULES, AnalysisReport, Finding, Rule, Severity
from .gate import PreDeployGate
from .netlist import check_netlist
from .relocate import (
    RelocationProof,
    check_relocatable,
    prove_relocatable,
    relocate,
)
from .semantics import (
    CanonicalResult,
    IndependenceProof,
    StreamEffect,
    SymbolicAddress,
    canonicalize,
    check_canonical,
    check_independence,
    compute_effect,
    prove_independence,
)
from .stream import FrameWrite, StreamModel, decode_stream
from .tamper import (
    check_readback_drift,
    check_routing_tamper,
    check_sanctioned_writes,
)

__all__ = [
    "RULES",
    "AnalysisReport",
    "CanonicalResult",
    "Finding",
    "FrameWrite",
    "IndependenceProof",
    "LintTarget",
    "PreDeployGate",
    "RelocationProof",
    "Rule",
    "RuleEngine",
    "Severity",
    "StreamEffect",
    "StreamModel",
    "SymbolicAddress",
    "canonicalize",
    "check_canonical",
    "check_conflicts",
    "check_containment",
    "check_duplicates",
    "check_independence",
    "check_netlist",
    "check_readback_drift",
    "check_relocatable",
    "check_routing_tamper",
    "check_sanctioned_writes",
    "compute_effect",
    "decode_stream",
    "lint_partial",
    "prove_independence",
    "prove_relocatable",
    "relocate",
    "sanctioned_route_columns",
]
