"""Static analysis of designs and partial bitstreams (``jpg lint``).

Four rule families, all checked without replaying anything on a device
model:

* ``S*`` — packet-stream lint (:mod:`.stream`): CRC mismatches, word
  alignment, read-only register writes, frame-count/header disagreement;
* ``C*`` — region containment (:mod:`.containment`): every decoded frame
  write must land in a column the declared region sanctions;
* ``X*`` — frame-conflict detection (:mod:`.conflict`): content-aware
  races between partials destined for concurrent deployment;
* ``N*`` — netlist/constraint lint (:mod:`.netlist`): placements outside
  their RANGE, unsanctioned region-crossing nets, antenna routes;
* ``T*`` — tamper detection (:mod:`.tamper`): frame writes outside every
  sanctioned region, routing edits relative to a golden base, and
  readback-vs-golden drift (needs the ``sanctioned``/``golden`` inputs).

:class:`RuleEngine` runs whatever the available inputs support;
:class:`PreDeployGate` turns blocking findings into
:class:`~repro.errors.AnalysisError` for the runtime/serve layers.  The
rule catalog is documented in ``docs/ANALYSIS.md``.
"""

from .conflict import check_conflicts, check_duplicates
from .containment import check_containment, sanctioned_route_columns
from .engine import LintTarget, RuleEngine, lint_partial
from .findings import RULES, AnalysisReport, Finding, Rule, Severity
from .gate import PreDeployGate
from .netlist import check_netlist
from .stream import FrameWrite, StreamModel, decode_stream
from .tamper import (
    check_readback_drift,
    check_routing_tamper,
    check_sanctioned_writes,
)

__all__ = [
    "RULES",
    "AnalysisReport",
    "Finding",
    "FrameWrite",
    "LintTarget",
    "PreDeployGate",
    "Rule",
    "RuleEngine",
    "Severity",
    "StreamModel",
    "check_conflicts",
    "check_containment",
    "check_duplicates",
    "check_netlist",
    "check_readback_drift",
    "check_routing_tamper",
    "check_sanctioned_writes",
    "decode_stream",
    "lint_partial",
    "sanctioned_route_columns",
]
