"""The rule engine: one entry point over every rule family.

A :class:`LintTarget` bundles whatever is known about one artifact — a
partial's config bytes, its declared region, its physical design, its
UCF constraints — and :class:`RuleEngine` runs every rule the available
inputs support: stream lint needs bytes, containment needs bytes and a
region, netlist lint needs a design, conflict detection needs two or
more targets with bytes.  Checks never replay anything on a device
model; each stream is decoded statically exactly once.

Counters (``analyze.runs``, ``analyze.targets``, ``analyze.findings``,
``analyze.errors``) and an ``analyze.run`` stage timer report to the
metrics registry bound in the current context (:mod:`repro.obs`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..bitstream.bitfile import BitFile
from ..bitstream.frames import FrameMemory
from ..devices import Device, get_device
from ..errors import UsageError
from ..flow.floorplan import Constraints, RegionRect
from ..flow.ncd import NcdDesign
from ..obs import current_metrics
from .containment import check_containment, sanctioned_route_columns
from .conflict import check_conflicts, check_duplicates
from .findings import AnalysisReport
from .netlist import check_netlist
from .relocate import check_relocatable
from .semantics import check_canonical, check_independence
from .stream import StreamModel, decode_stream
from .tamper import check_routing_tamper, check_sanctioned_writes

#: Anything the engine accepts as a golden base configuration.
GoldenInput = FrameMemory | BitFile | bytes


@dataclass
class LintTarget:
    """Everything known about one artifact under analysis."""

    name: str
    data: bytes | None = None            # partial config bytes
    region: RegionRect | None = None     # declared region
    design: NcdDesign | None = None      # module physical design
    constraints: Constraints | None = None   # parsed UCF constraints

    def effective_region(self) -> RegionRect | None:
        """The declared region, falling back to a single UCF RANGE."""
        if self.region is not None:
            return self.region
        if self.constraints is not None:
            ranges = [g.range for g in self.constraints.groups
                      if g.range is not None]
            if len(ranges) == 1:
                return ranges[0]
        return None


class RuleEngine:
    """Run every applicable rule family over a set of targets.

    ``sanctioned`` (a deployment policy: the regions partials may touch)
    enables the T001 unsanctioned-write rule; ``golden`` (the base
    configuration, as frames / a .bit / raw config bytes) enables the
    T002 routing-tamper rule for targets whose sanctioned rows are known
    (the policy, or the target's own declared region).

    The semantic rules are opt-in: ``relocatable`` arms R001 (each
    target must prove column-shift invariance), ``independence`` arms
    R002 (every pair of targets must prove a commuting effect), and
    ``canonical`` arms R003 (each target must match its canonical
    re-assembly) — see :mod:`.semantics` and :mod:`.relocate`.
    """

    def __init__(self, device: Device | str | None = None, *,
                 conflicts: bool = True,
                 golden: GoldenInput | None = None,
                 sanctioned: list[RegionRect] | None = None,
                 relocatable: bool = False,
                 independence: bool = False,
                 canonical: bool = False):
        if isinstance(device, str):
            device = get_device(device)
        self.device = device
        self.conflicts = conflicts
        self.sanctioned = sanctioned
        self.relocatable = relocatable
        self.independence = independence
        self.canonical = canonical
        self._golden_input = golden
        self._golden: FrameMemory | None = None

    def golden_frames(self, device: Device) -> FrameMemory | None:
        """The golden base as frames (parsed once, lazily)."""
        if self._golden is None and self._golden_input is not None:
            golden = self._golden_input
            if isinstance(golden, BitFile):
                golden = golden.config_bytes
            if isinstance(golden, bytes):
                from ..bitstream.reader import parse_bitstream

                golden, _stats = parse_bitstream(device, golden)
            if golden.device != device:
                raise UsageError(
                    f"golden base is for {golden.device.name}, "
                    f"lint device is {device.name}"
                )
            self._golden = golden
        return self._golden

    def _device_for(self, targets: list[LintTarget]) -> Device:
        if self.device is not None:
            return self.device
        for t in targets:
            if t.design is not None:
                return t.design.device
        raise UsageError(
            "lint needs a device: pass one to RuleEngine or include a "
            "target with a design"
        )

    def run(self, targets: list[LintTarget]) -> AnalysisReport:
        metrics = current_metrics()
        start = time.perf_counter()
        report = AnalysisReport(targets=[t.name for t in targets])
        models: list[StreamModel] = []
        regions: dict[str, RegionRect] = {}
        for target in targets:
            region = target.effective_region()
            if region is not None:
                regions[target.name] = region
            if target.data is not None:
                device = self._device_for(targets)
                model = decode_stream(device, target.data,
                                      subject=target.name)
                models.append(model)
                report.extend(model.findings)
                report.extend(check_duplicates(model))
                if self.relocatable:
                    report.extend(check_relocatable(device, model))
                if self.canonical:
                    report.extend(check_canonical(device, target.data, model))
                if region is not None:
                    report.extend(check_containment(
                        device, model, region, target.design
                    ))
                if self.sanctioned is not None:
                    route_cols = None
                    if target.design is not None:
                        route_cols = sanctioned_route_columns(target.design)
                    report.extend(check_sanctioned_writes(
                        device, model, self.sanctioned,
                        route_cols=route_cols,
                    ))
                tamper_rows = self.sanctioned
                if tamper_rows is None and region is not None:
                    tamper_rows = [region]
                if tamper_rows is not None:
                    golden = self.golden_frames(device)
                    if golden is not None:
                        report.extend(check_routing_tamper(
                            device, model, golden, tamper_rows
                        ))
            if target.design is not None:
                report.extend(check_netlist(
                    target.design,
                    subject=target.name,
                    region=region,
                    constraints=target.constraints,
                ))
        if self.conflicts and len(models) > 1:
            report.extend(check_conflicts(models, regions))
        if self.independence and len(models) > 1:
            report.extend(check_independence(
                self._device_for(targets), models
            ))
        metrics.count("analyze.runs")
        metrics.count("analyze.targets", len(targets))
        metrics.count("analyze.findings", len(report.findings))
        metrics.count("analyze.errors", len(report.errors))
        metrics.record("analyze.run", time.perf_counter() - start,
                       targets=len(targets), findings=len(report.findings))
        return report


def lint_partial(
    device: Device | str,
    data: bytes,
    *,
    name: str = "partial",
    region: RegionRect | None = None,
    design: NcdDesign | None = None,
    constraints: Constraints | None = None,
) -> AnalysisReport:
    """One-shot lint of a single partial bitstream."""
    engine = RuleEngine(device)
    return engine.run([LintTarget(
        name, data=data, region=region, design=design,
        constraints=constraints,
    )])
