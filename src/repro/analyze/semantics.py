"""Semantic stream analysis: device-relative frame effects (R002/R003).

Where :mod:`.stream` checks a configuration stream's *syntax* (packet
grammar, CRCs, addresses in range), this module recovers its *effect*:
the final per-frame contents the stream leaves behind, keyed by the
device-relative address algebra of :meth:`Geometry.symbolic_address`
(column kind + fabric position + minor) rather than absolute FAR values.
Two semantic rules build on that abstraction:

* **R002 independence** — two partials are safe to deploy in either
  order (or concurrently) iff their effects commute: every frame both
  write must end up with identical content, and disjoint write sets are
  additionally safe under interleaving.  :func:`prove_independence`
  produces the proof object; :func:`check_independence` turns refuted
  pairs into findings.
* **R003 canonicalization** — a partial is *canonical* when it is byte-
  identical to re-assembling its own effect: no dead or shadowed frame
  writes, no redundant duplicates, runs sorted and merged, CRC checked.
  :func:`canonicalize` emits the minimized stream (with re-computed
  CRC); :func:`check_canonical` flags streams that differ from their
  canonical form.

A third semantic rule, R001 relocatability, lives in :mod:`.relocate`
(it additionally needs the FAR-rewrite mechanics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bitstream.assembler import partial_stream
from ..bitstream.frames import FrameMemory
from ..bitstream.packets import Command
from ..devices import Device
from ..obs import current_metrics
from .findings import Finding, Severity, rule
from .stream import StreamModel, decode_stream

R002 = rule("R002", "not-independent", Severity.ERROR,
            "the partials disagree on shared frame contents, so deploy "
            "order changes the configuration; regenerate them against a "
            "common base or deploy them as one stream")
R003 = rule("R003", "non-canonical-stream", Severity.WARNING,
            "the stream carries dead, shadowed, or redundant frame "
            "writes; re-emit it in canonical form (jpg lint --canonical "
            "reports the minimized size)")


@dataclass(frozen=True)
class SymbolicAddress:
    """Device-relative frame address: column kind + position + minor.

    ``position`` follows :meth:`Geometry.symbolic_address`: the 0-based
    fabric column for CLB columns, the edge letter for IOB/BRAM columns,
    None for the clock column.  Comparing effects through this key (not
    the absolute FAR major) is what lets the relocation analysis reason
    about column shifts.
    """

    kind: str
    position: int | str | None
    minor: int

    def __str__(self) -> str:
        pos = "" if self.position is None else f"[{self.position}]"
        return f"{self.kind}{pos}.{self.minor}"


@dataclass
class StreamEffect:
    """The frame-state effect of one configuration stream.

    ``final`` maps each written linear frame to the content it holds
    after the stream completes (later writes shadow earlier ones);
    ``symbolic`` re-keys the same contents by :class:`SymbolicAddress`.
    ``deterministic`` is False when the decode stopped early or any
    error-severity stream finding was reported — an effect recovered
    from a broken stream proves nothing.
    """

    subject: str
    device: Device
    model: StreamModel
    final: dict[int, bytes] = field(default_factory=dict)
    symbolic: dict[SymbolicAddress, bytes] = field(default_factory=dict)
    shadowed: list[int] = field(default_factory=list)
    startup: bool = False
    deterministic: bool = True

    def frames(self) -> set[int]:
        return set(self.final)


def compute_effect(device: Device, model: StreamModel) -> StreamEffect:
    """Abstractly interpret a decoded stream into its frame-state effect."""
    effect = StreamEffect(
        subject=model.subject,
        device=device,
        model=model,
        startup=Command.START in model.commands,
        deterministic=(
            model.decode_complete
            and not any(f.effective_severity is Severity.ERROR
                        for f in model.findings)
        ),
    )
    g = device.geometry
    for w in model.writes:
        if w.index in effect.final:
            effect.shadowed.append(w.index)
        effect.final[w.index] = w.payload
    for index, payload in effect.final.items():
        kind, position, minor = g.symbolic_address(index)
        effect.symbolic[SymbolicAddress(kind, position, minor)] = payload
    current_metrics().count("analyze.semantics.effects")
    return effect


# -- R002: independence / commutativity ---------------------------------------


@dataclass
class IndependenceProof:
    """Whether two streams' effects commute (and how they fail to)."""

    a: str
    b: str
    provable: bool                  # both effects deterministic
    disjoint: bool                  # no shared frames at all
    commutes: bool                  # shared frames agree on final content
    shared: list[int] = field(default_factory=list)
    disagreements: list[int] = field(default_factory=list)

    @property
    def independent(self) -> bool:
        """Safe to deploy in either order."""
        return self.provable and self.commutes


def prove_independence(a: StreamEffect, b: StreamEffect) -> IndependenceProof:
    """Prove (or refute) that two effects commute.

    Deploy order is irrelevant iff every frame both streams write ends
    up with the same content either way — i.e. their final contents
    agree on the intersection.  Disjoint write sets are the stronger
    guarantee (safe even under interleaved transfer).
    """
    shared = sorted(a.frames() & b.frames())
    disagreements = [f for f in shared if a.final[f] != b.final[f]]
    provable = a.deterministic and b.deterministic
    current_metrics().count("analyze.independence.pairs")
    return IndependenceProof(
        a=a.subject,
        b=b.subject,
        provable=provable,
        disjoint=not shared,
        commutes=not disagreements,
        shared=shared,
        disagreements=disagreements,
    )


def _address_of(device: Device, index: int) -> str:
    major, minor = device.geometry.frame_address(index)
    return f"{major}.{minor}"


def check_independence(device: Device,
                       models: list[StreamModel]) -> list[Finding]:
    """R002 over every pair of decoded streams.

    One finding per pair whose independence cannot be proven: an error
    when the effects disagree on shared frames (deploy order changes the
    result) or when either stream decoded non-deterministically, a
    warning when they agree but overlap (order-safe, yet not safe under
    interleaved transfer).
    """
    effects = [compute_effect(device, m) for m in models]
    findings: list[Finding] = []
    for i in range(len(effects)):
        for j in range(i + 1, len(effects)):
            proof = prove_independence(effects[i], effects[j])
            pair = f"{proof.a}+{proof.b}"
            if not proof.provable:
                findings.append(Finding(
                    R002, pair,
                    "independence is unprovable: a stream failed to decode "
                    "deterministically",
                ))
            elif not proof.commutes:
                where = ", ".join(
                    _address_of(device, f) for f in proof.disagreements[:4]
                )
                more = (f" (+{len(proof.disagreements) - 4} more)"
                        if len(proof.disagreements) > 4 else "")
                findings.append(Finding(
                    R002, pair,
                    f"effects disagree on {len(proof.disagreements)} shared "
                    f"frame(s) at {where}{more}; deploy order changes the "
                    f"configuration",
                    frame=proof.disagreements[0],
                ))
            elif not proof.disjoint:
                findings.append(Finding(
                    R002, pair,
                    f"effects commute but share {len(proof.shared)} frame(s) "
                    f"with identical content; safe in either order, unsafe "
                    f"interleaved",
                    severity=Severity.WARNING,
                    frame=proof.shared[0],
                ))
    return findings


# -- R003: canonicalization ----------------------------------------------------


@dataclass
class CanonicalResult:
    """Outcome of canonicalizing one stream."""

    subject: str
    applicable: bool                # stream is a well-formed partial
    canonical: bytes | None = None  # minimized re-assembled stream
    changed: bool = False
    reasons: list[str] = field(default_factory=list)

    @property
    def saved_bytes(self) -> int:
        return 0 if self.canonical is None else self._original - len(self.canonical)

    _original: int = 0


def canonicalize(device: Device, data: bytes, *,
                 model: StreamModel | None = None,
                 subject: str = "stream") -> CanonicalResult:
    """Re-assemble a partial stream from its own effect.

    The canonical form writes each frame exactly once with its final
    content, in sorted linear order with runs merged, CRC-checked, with
    the standard partial preamble/trailer (startup preserved).  A stream
    produced by this package's assembler is already canonical, so
    canonicalizing it is byte-identity; anything else — shadowed writes,
    redundant duplicates, fragmented or unsorted runs — shrinks or
    reorders, and the difference is what R003 reports.

    Not applicable (no canonical form emitted) for streams that fail to
    decode cleanly, write no frames, or program the option registers
    (COR/MASK/CTL — a full-configuration preamble, out of scope for
    partial canonicalization).
    """
    if model is None:
        model = decode_stream(device, data, subject=subject)
    result = CanonicalResult(subject=model.subject, applicable=True)
    result._original = len(data)
    if not model.decode_complete:
        result.applicable = False
        result.reasons.append("decode stopped early")
    if any(f.effective_severity is Severity.ERROR for f in model.findings):
        result.applicable = False
        result.reasons.append("stream has blocking lint findings")
    if model.option_writes:
        result.applicable = False
        result.reasons.append(
            "programs option registers (full-configuration preamble)"
        )
    if not model.writes:
        result.applicable = False
        result.reasons.append("writes no frames")
    if not result.applicable:
        return result
    effect = compute_effect(device, model)
    fm = FrameMemory(device)
    for index, payload in effect.final.items():
        fm.set_frame(index, np.frombuffer(payload, dtype=">u4"))
    result.canonical = partial_stream(
        fm, sorted(effect.final), startup=effect.startup
    )
    result.changed = result.canonical != data
    if result.changed:
        if effect.shadowed:
            result.reasons.append(
                f"{len(effect.shadowed)} shadowed frame write(s)"
            )
        indices = [w.index for w in model.writes]
        if indices != sorted(set(indices)):
            result.reasons.append("frame writes out of order or duplicated")
        if not result.reasons:
            result.reasons.append("packaging differs from canonical form")
    current_metrics().count("analyze.canonical.rebuilt")
    return result


def check_canonical(device: Device, data: bytes,
                    model: StreamModel) -> list[Finding]:
    """R003: flag streams that differ from their canonical form."""
    result = canonicalize(device, data, model=model)
    if not result.applicable or not result.changed:
        return []
    assert result.canonical is not None
    delta = len(data) - len(result.canonical)
    sign = "saving" if delta >= 0 else "growing"
    return [Finding(
        R003, model.subject,
        f"stream is not canonical ({'; '.join(result.reasons)}); "
        f"re-assembly {sign} {abs(delta)} byte(s)",
    )]
