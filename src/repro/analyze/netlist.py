"""Netlist and constraint lint (the ``N*`` rule family).

Static checks over a physical design (:class:`~repro.flow.ncd.NcdDesign`)
and its UCF constraints — the front half of the containment story: a
module whose *placement* already escapes its RANGE will produce a
partial that escapes its region, so these rules catch the defect one
stage earlier and point at sites and nets instead of frames.

Escape detection uses the same boundary-net sanction as the stream-side
containment rules (:func:`repro.analyze.containment.net_is_sanctioned`):
the clock tree and nets with IOB/GCLK terminals legitimately cross
region edges; everything else must route inside its region's columns.
"""

from __future__ import annotations

from fnmatch import fnmatchcase

from ..devices import slice_site_name
from ..flow.floorplan import Constraints, RegionRect
from ..flow.ncd import NcdDesign
from .containment import net_is_sanctioned
from .findings import Finding, Severity, rule

N001 = rule("N001", "placement-outside-region", Severity.ERROR,
            "the component is placed outside its RANGE/region; re-place "
            "with the constraint applied")
N002 = rule("N002", "unplaced-component", Severity.ERROR,
            "the design is not fully placed; run placement before "
            "generating a partial")
N003 = rule("N003", "unrouted-net", Severity.ERROR,
            "the design is not fully routed; run routing before "
            "generating a partial")
N004 = rule("N004", "antenna-net", Severity.ERROR,
            "the net occupies routing (PIPs) but reaches no sink; remove "
            "the dangling route")
N005 = rule("N005", "net-escapes-region", Severity.ERROR,
            "an internal net routes through columns outside the region "
            "without an IOB/clock terminal sanctioning the crossing")
N006 = rule("N006", "loc-mismatch", Severity.ERROR,
            "the component is placed on a different site than its LOC "
            "constraint pins it to")


def _range_for(name: str, constraints: Constraints | None,
               region: RegionRect | None) -> RegionRect | None:
    """The rectangle that constrains one instance: its area group's
    RANGE when the UCF names one, else the target's declared region."""
    if constraints is not None:
        group = constraints.group_of(name)
        if group is not None and group.range is not None:
            return group.range
    return region


def check_netlist(
    design: NcdDesign,
    *,
    subject: str,
    region: RegionRect | None = None,
    constraints: Constraints | None = None,
) -> list[Finding]:
    """Run every ``N*`` rule over one physical design."""
    findings: list[Finding] = []

    # placement: every comp placed, and inside its rectangle
    for comp in design.slices.values():
        if comp.site is None:
            findings.append(Finding(
                N002, subject, f"slice {comp.name!r} is not placed",
            ))
            continue
        row, col, s = comp.site
        rect = _range_for(comp.name, constraints, region)
        if rect is not None and not rect.contains(row, col):
            findings.append(Finding(
                N001, subject,
                f"slice {comp.name!r} placed outside {rect.to_ucf()}",
                site=slice_site_name(row, col, s),
            ))
    for iob in design.iobs.values():
        if iob.site is None:
            findings.append(Finding(
                N002, subject, f"IOB {iob.name!r} is not placed",
            ))

    # routing: complete, no antennas, no unsanctioned escapes
    for net in design.nets.values():
        if net.pips and not net.sinks:
            findings.append(Finding(
                N004, subject,
                f"net {net.name!r} occupies {len(net.pips)} PIP(s) but "
                f"has no sinks",
                net=net.name,
            ))
            continue
        if net.sinks and not net.routed:
            findings.append(Finding(
                N003, subject, f"net {net.name!r} is not routed",
                net=net.name,
            ))
            continue
        rect = _range_for(net.source.comp, constraints, region)
        if rect is None or net_is_sanctioned(design, net):
            continue
        allowed = set(rect.clb_columns())
        escaped = sorted({col for _, col, _ in net.pips
                          if col not in allowed})
        if escaped:
            findings.append(Finding(
                N005, subject,
                f"net {net.name!r} routes through CLB column(s) "
                f"{[c + 1 for c in escaped]} outside {rect.to_ucf()}",
                net=net.name,
            ))

    # LOC constraints: pinned instances sit where the UCF says
    if constraints is not None:
        for pattern, loc in constraints.locs.items():
            for comp in design.slices.values():
                if not fnmatchcase(comp.name, pattern) or comp.site is None:
                    continue
                actual = slice_site_name(*comp.site)
                if actual.upper() != loc.upper():
                    findings.append(Finding(
                        N006, subject,
                        f"slice {comp.name!r} placed on {actual}, "
                        f"LOC pins it to {loc}",
                        site=actual,
                    ))
            for iob in design.iobs.values():
                if not fnmatchcase(iob.name, pattern) or iob.site is None:
                    continue
                if iob.site.name.upper() != loc.upper():
                    findings.append(Finding(
                        N006, subject,
                        f"IOB {iob.name!r} placed on {iob.site.name}, "
                        f"LOC pins it to {loc}",
                        site=iob.site.name,
                    ))
    return findings
