"""Structured diagnostics: rules, findings, and analysis reports.

Every check in :mod:`repro.analyze` reports through this module: a
:class:`Rule` describes *what kind* of defect a check looks for (stable
id, default severity, fix hint), a :class:`Finding` is *one occurrence*
(subject, message, frame/site/net location), and an
:class:`AnalysisReport` aggregates findings across targets with the
render/serialize helpers the ``jpg lint`` CLI uses.

Rule ids are grouped by family — ``S*`` packet-stream lint, ``C*``
region containment, ``X*`` cross-partial conflicts, ``N*``
netlist/constraint lint — and the full catalog lives in
``docs/ANALYSIS.md`` (``tools/docs_check.py`` enforces that every id
registered here is documented there).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from .. import utils


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is meaningful (ERROR > WARNING)."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One registered analysis rule."""

    id: str
    title: str
    severity: Severity
    hint: str


#: Every registered rule, by id (populated by :func:`rule` at import time).
RULES: dict[str, Rule] = {}


def rule(rule_id: str, title: str, severity: Severity, hint: str) -> Rule:
    """Register a rule in the catalog (ids must be unique)."""
    if rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    r = Rule(rule_id, title, severity, hint)
    RULES[rule_id] = r
    return r


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``severity`` defaults to the rule's but may be downgraded per
    occurrence (e.g. containment escapes become warnings when no design
    is available to prove them unsanctioned).
    """

    rule: Rule
    subject: str                    # which target (partial/design name)
    message: str
    severity: Severity | None = None
    frame: int | None = None        # linear frame index
    address: str | None = None      # "major.minor" frame address
    site: str | None = None         # CLB/IOB site name
    net: str | None = None
    hint: str | None = None

    @property
    def effective_severity(self) -> Severity:
        return self.severity if self.severity is not None else self.rule.severity

    @property
    def location(self) -> str:
        parts = []
        if self.frame is not None:
            parts.append(f"frame {self.frame}")
        if self.address is not None:
            parts.append(f"@{self.address}")
        if self.site is not None:
            parts.append(self.site)
        if self.net is not None:
            parts.append(f"net {self.net}")
        return " ".join(parts) or "-"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule.id,
            "title": self.rule.title,
            "severity": str(self.effective_severity),
            "subject": self.subject,
            "message": self.message,
            "frame": self.frame,
            "address": self.address,
            "site": self.site,
            "net": self.net,
            "hint": self.hint if self.hint is not None else self.rule.hint,
        }


@dataclass
class AnalysisReport:
    """All findings of one :meth:`RuleEngine.run` across its targets."""

    findings: list[Finding] = field(default_factory=list)
    targets: list[str] = field(default_factory=list)

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings
                if f.effective_severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings
                if f.effective_severity is Severity.WARNING]

    def ok(self, *, strict: bool = False) -> bool:
        """Clean bill of health: no errors (and, in strict mode, no
        warnings either)."""
        if strict:
            return not self.findings
        return not self.errors

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule.id] = counts.get(f.rule.id, 0) + 1
        return counts

    def table(self) -> str:
        """The human-readable table ``jpg lint`` prints."""
        ordered = sorted(
            self.findings,
            key=lambda f: (-int(f.effective_severity), f.subject, f.rule.id),
        )
        rows = [
            (f.rule.id, str(f.effective_severity), f.subject, f.location,
             f.message)
            for f in ordered
        ]
        return utils.format_table(
            ["rule", "severity", "target", "location", "message"], rows
        )

    def summary(self) -> str:
        return (
            f"{len(self.targets)} target(s): {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "targets": list(self.targets),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
