"""Static packet-stream decoder and lint (the ``S*`` rule family).

:func:`decode_stream` walks a configuration byte stream the way the
device's config logic would — sync hunt, type-1/type-2 packets, FAR
auto-increment, running CRC — but *statically*: nothing is written to a
frame memory, and malformed input produces :class:`Finding` diagnostics
instead of exceptions, so one pass reports every problem it can see.

The result, a :class:`StreamModel`, records each frame write as a
:class:`FrameWrite` with a content digest of its payload; the
containment (``C*``) and conflict (``X*``) rules consume that model, so
a stream is decoded exactly once per analysis.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .. import utils
from ..bitstream.crc import ConfigCrc
from ..bitstream.packets import (
    CRC_COVERED,
    DUMMY_WORD,
    SYNC_WORD,
    Command,
    Opcode,
    Register,
    decode_header,
    far_decode,
)
from ..devices import Device
from ..errors import DeviceError, PacketError
from .findings import Finding, Severity, rule

S001 = rule("S001", "crc-mismatch", Severity.ERROR,
            "regenerate the stream; the CRC check word does not match the "
            "covered register writes")
S002 = rule("S002", "not-word-aligned", Severity.ERROR,
            "configuration streams are 32-bit word sequences; pad or fix "
            "the truncated transfer")
S003 = rule("S003", "readonly-register-write", Severity.ERROR,
            "STAT and FDRO are read-only; writes indicate a corrupt or "
            "mis-assembled stream")
S004 = rule("S004", "frame-length-mismatch", Severity.ERROR,
            "FDRI bursts must be a whole number of frames; check the FLR "
            "value used at assembly time")
S005 = rule("S005", "flr-missing-or-wrong", Severity.ERROR,
            "program FLR with the device's frame length before any frame "
            "data write")
S006 = rule("S006", "idcode-mismatch", Severity.ERROR,
            "the stream targets a different part; regenerate for this "
            "device")
S007 = rule("S007", "presync-garbage", Severity.ERROR,
            "only dummy padding may precede the sync word; the stream "
            "head is corrupt")
S008 = rule("S008", "no-desync", Severity.WARNING,
            "end partials with a DESYNC command so the config port "
            "releases cleanly")
S009 = rule("S009", "write-outside-wcfg", Severity.ERROR,
            "issue CMD=WCFG before streaming FDRI frame data")
S010 = rule("S010", "bad-frame-address", Severity.ERROR,
            "the FAR value or burst length runs outside the device's "
            "frame space")
S011 = rule("S011", "no-crc-check", Severity.WARNING,
            "write the accumulated CRC so the device validates the "
            "transfer")
S012 = rule("S012", "truncated-packet", Severity.ERROR,
            "the header promises more data words than the stream holds")
S013 = rule("S013", "malformed-header", Severity.ERROR,
            "undecodable packet header; decoding cannot continue past it")


@dataclass(frozen=True)
class FrameWrite:
    """One frame written by an FDRI burst."""

    index: int                       # linear frame index
    major: int
    minor: int
    digest: str                      # content hash of the frame payload
    payload: bytes = b""             # the frame's words, big-endian

    @property
    def address(self) -> str:
        return f"{self.major}.{self.minor}"


@dataclass
class StreamModel:
    """What a static decode learned about one configuration stream."""

    subject: str
    findings: list[Finding] = field(default_factory=list)
    writes: list[FrameWrite] = field(default_factory=list)
    commands: list[Command] = field(default_factory=list)
    #: Writes to the option registers (COR/MASK/CTL), in stream order.
    #: Partial streams never program these; their presence marks a
    #: full-configuration preamble (the semantic analyses key off this).
    option_writes: list[tuple[Register, int]] = field(default_factory=list)
    packets: int = 0
    crc_checks: int = 0
    synced: bool = False
    desynced: bool = False
    decode_complete: bool = False     # False when lint had to stop early

    def frame_indices(self) -> set[int]:
        return {w.index for w in self.writes}

    def frames_by_index(self) -> dict[int, FrameWrite]:
        """Last write per frame (later writes shadow earlier ones)."""
        return {w.index: w for w in self.writes}


def _digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


class _Decoder:
    """One static decode pass; findings accumulate, nothing raises."""

    def __init__(self, device: Device, model: StreamModel):
        self.device = device
        self.model = model
        self.crc = ConfigCrc()
        self.synced = False
        self.cmd = Command.NULL
        self.far_linear: int | None = 0
        self.flr_ok = False
        self.presync_noise = 0

    def finding(self, r, message: str, **kwargs) -> None:
        self.model.findings.append(
            Finding(r, self.model.subject, message, **kwargs)
        )

    # -- driving ----------------------------------------------------------------

    def run(self, words: list[int]) -> None:
        i, n = 0, len(words)
        while i < n:
            if not self.synced:
                w = words[i]
                i += 1
                if w == SYNC_WORD:
                    self.synced = True
                    self.model.synced = True
                elif w != DUMMY_WORD:
                    self.presync_noise += 1
                continue
            step = self._packet(words, i)
            if step is None:
                return                      # unrecoverable; stop decoding
            i = step
        self.model.decode_complete = True

    def _packet(self, words: list[int], i: int) -> int | None:
        try:
            hdr = decode_header(words[i])
        except PacketError as exc:
            self.finding(S013, str(exc))
            return None
        i += 1
        self.model.packets += 1
        count, reg = hdr.count, hdr.reg
        if hdr.type == 2:
            self.finding(
                S013, "type-2 packet without a preceding zero-count type-1"
            )
            return None
        if hdr.op is Opcode.NOP:
            return i
        if count == 0 and i < len(words):
            try:
                nxt = decode_header(words[i])
            except PacketError:
                nxt = None
            if nxt is not None and nxt.type == 2:
                if nxt.op != hdr.op:
                    self.finding(S013, "type-2 opcode does not match its type-1")
                    return None
                i += 1
                count = nxt.count
        if hdr.op is Opcode.READ:
            return i                        # readback requests carry no data
        assert reg is not None
        if i + count > len(words):
            self.finding(
                S012,
                f"truncated packet: {count} data words promised, "
                f"{len(words) - i} available",
            )
            return None
        data = words[i:i + count]
        self._write(reg, data)
        return i + count

    # -- register semantics ------------------------------------------------------

    def _write(self, reg: Register, data: list[int]) -> None:
        if reg is Register.FDRI:
            self.crc.update_words(int(reg), data)
            self._write_frames(data)
            return
        if reg in (Register.STAT, Register.FDRO):
            self.finding(
                S003, f"write to read-only register {reg.name}"
            )
            return
        for w in data:
            if reg in CRC_COVERED:
                self.crc.update_word(int(reg), w)
            self._execute(reg, w)

    def _execute(self, reg: Register, value: int) -> None:
        g = self.device.geometry
        if reg is Register.CMD:
            try:
                cmd = Command(value)
            except ValueError:
                self.finding(S013, f"unknown CMD opcode {value}")
                return
            self.cmd = cmd
            self.model.commands.append(cmd)
            if cmd is Command.RCRC:
                self.crc.reset()
            elif cmd is Command.DESYNC:
                self.synced = False
                self.model.desynced = True
        elif reg is Register.FAR:
            major, minor = far_decode(value)
            try:
                self.far_linear = g.frame_index(major, minor)
            except DeviceError:
                self.far_linear = None
                self.finding(
                    S010,
                    f"FAR {major}.{minor} is not a frame of {self.device.name}",
                    address=f"{major}.{minor}",
                )
        elif reg is Register.FLR:
            if value != g.flr_value:
                self.finding(
                    S005,
                    f"FLR {value} does not match {self.device.name} "
                    f"(expected {g.flr_value})",
                )
            else:
                self.flr_ok = True
        elif reg is Register.IDCODE:
            if value != self.device.part.idcode:
                self.finding(
                    S006,
                    f"IDCODE 0x{value:08x} does not match {self.device.name} "
                    f"(0x{self.device.part.idcode:08x})",
                )
        elif reg in (Register.COR, Register.MASK, Register.CTL):
            self.model.option_writes.append((reg, value))
        elif reg is Register.CRC:
            if value != self.crc.value:
                self.finding(
                    S001,
                    f"CRC mismatch: stream says 0x{value:04x}, device would "
                    f"compute 0x{self.crc.value:04x}",
                )
            else:
                self.model.crc_checks += 1
            self.crc.reset()

    def _write_frames(self, data: list[int]) -> None:
        if self.cmd is not Command.WCFG:
            self.finding(S009, "FDRI write outside WCFG mode")
        if not self.flr_ok:
            self.finding(S005, "FDRI write before FLR was programmed")
        g = self.device.geometry
        fw = g.frame_words
        if len(data) % fw:
            self.finding(
                S004,
                f"FDRI burst of {len(data)} words is not a multiple of the "
                f"frame length ({fw} words)",
            )
            return
        if self.far_linear is None:
            return                          # already reported as S010
        nframes = len(data) // fw
        start, end = self.far_linear, self.far_linear + nframes
        if end > g.total_frames:
            self.finding(
                S010,
                f"FDRI burst overruns frame space: frames {start}..{end - 1} "
                f"of {g.total_frames}",
                frame=start,
            )
            nframes = g.total_frames - start
            end = g.total_frames
        payload = b"".join(
            w.to_bytes(4, "big") for w in data
        )
        for k in range(nframes):
            index = start + k
            major, minor = g.frame_address(index)
            frame_payload = payload[k * 4 * fw:(k + 1) * 4 * fw]
            self.model.writes.append(FrameWrite(
                index, major, minor, _digest(frame_payload), frame_payload,
            ))
        self.far_linear = end if end < g.total_frames else 0


def decode_stream(device: Device, data: bytes, *,
                  subject: str = "stream") -> StreamModel:
    """Statically decode one configuration byte stream.

    Returns a :class:`StreamModel` whose ``findings`` hold every ``S*``
    diagnostic; decoding is tolerant and only stops at defects it cannot
    skip past (malformed headers, truncation).
    """
    model = StreamModel(subject=subject)
    trailing = len(data) % 4
    if trailing:
        model.findings.append(Finding(
            S002, subject,
            f"stream length {len(data)} is not word aligned "
            f"({trailing} trailing byte(s) ignored)",
        ))
        data = data[:len(data) - trailing]
    words = [int(w) for w in utils.bytes_to_words(data)]
    dec = _Decoder(device, model)
    dec.run(words)
    if dec.presync_noise:
        model.findings.append(Finding(
            S007, subject,
            f"{dec.presync_noise} non-dummy word(s) before sync",
        ))
    if not model.decode_complete:
        return model
    if model.synced and not model.desynced:
        model.findings.append(Finding(
            S008, subject, "stream ends without a DESYNC command",
        ))
    if model.writes and not model.crc_checks:
        has_mismatch = any(f.rule is S001 for f in model.findings)
        if not has_mismatch:
            model.findings.append(Finding(
                S011, subject,
                "frame data written but the stream never checks the CRC",
            ))
    return model
