"""Tamper detection (the ``T*`` rule family).

Where the ``C*`` rules check a partial against its *own* declared region,
the tamper rules check it against an explicit deployment **policy**: a
list of sanctioned regions (what operators agreed may be reconfigured)
and a **golden base** configuration (what the rest of the device must
keep holding).  They exist for the hostile case — a partial that was
modified after generation, a bitstream of unknown provenance, a board
whose configuration drifted — in the spirit of hardware-trojan work on
FPGA bitstreams:

* ``T001`` — the stream writes CLB or BRAM frames no sanctioned region
  covers (the partial reaches outside the agreed reconfigurable area);
* ``T002`` — inside a sanctioned column, the stream edits routing-plane
  frames *outside the sanctioned rows* relative to the golden base
  (a classic trojan vector: splice a tap into pass-through routing);
* ``T003`` — a readback diverges from the golden base anywhere the
  policy does not explain (configuration drift / implant detection).

All three need inputs beyond a lone partial — the policy and/or the
golden base — so :class:`~repro.analyze.engine.RuleEngine` and
:class:`~repro.analyze.gate.PreDeployGate` accept ``sanctioned`` and
``golden`` arguments and run whatever the inputs support, exactly like
every other family.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..bitstream.frames import FrameMemory
from ..devices import BITS_PER_ROW, ColumnKind, Device
from ..devices.resources import PIP_MINOR_BASE
from ..flow.floorplan import RegionRect
from .findings import Finding, Severity, rule
from .stream import FrameWrite, StreamModel

__all__ = [
    "check_readback_drift",
    "check_routing_tamper",
    "check_sanctioned_writes",
]

T001 = rule("T001", "unsanctioned-frame-write", Severity.ERROR,
            "the stream writes configuration frames no sanctioned region "
            "covers; reject it unless the deployment policy is extended")
T002 = rule("T002", "routing-tamper-vs-golden", Severity.ERROR,
            "routing-plane bits outside the sanctioned rows differ from "
            "the golden base; the partial may carry spliced routing")
T003 = rule("T003", "readback-drift", Severity.ERROR,
            "the readback diverges from the golden configuration outside "
            "every sanctioned region; scrub the device and investigate")


def _sanctioned_columns(sanctioned: Sequence[RegionRect]) -> set[int]:
    cols: set[int] = set()
    for rect in sanctioned:
        cols.update(rect.clb_columns())
    return cols


def _row_bit_spans(
    device: Device, sanctioned: Sequence[RegionRect], clb_col: int
) -> list[tuple[int, int]]:
    """Frame-bit intervals the policy sanctions in one CLB column."""
    g = device.geometry
    spans: list[tuple[int, int]] = []
    for rect in sanctioned:
        if clb_col in rect.clb_columns():
            lo = g.row_bit_offset(rect.rmin)
            hi = g.row_bit_offset(rect.rmax) + BITS_PER_ROW
            spans.append((lo, hi))
    return spans


def _allowed_mask(
    device: Device, spans: Sequence[tuple[int, int]]
) -> np.ndarray:
    """Per-word uint32 mask of frame bits the policy sanctions."""
    g = device.geometry
    mask = np.zeros(g.frame_words, dtype=np.uint32)
    for lo, hi in spans:
        hi = min(hi, g.frame_bits)
        for b in range(lo, hi):
            mask[b // 32] |= np.uint32(1 << (31 - b % 32))
    return mask


def _word_view(payload: bytes, frame_words: int) -> np.ndarray | None:
    if len(payload) != 4 * frame_words:
        return None
    return np.frombuffer(payload, dtype=">u4").astype(np.uint32)


def _first_diff_bit(diff: np.ndarray) -> int:
    """Frame-bit position of the first set bit in a diff word array."""
    for w, word in enumerate(diff):
        if word:
            return 32 * w + (31 - int(word).bit_length() + 1)
    return -1


def check_sanctioned_writes(
    device: Device,
    model: StreamModel,
    sanctioned: Sequence[RegionRect],
    *,
    route_cols: set[int] | None = None,
) -> list[Finding]:
    """T001: every CLB/BRAM frame write must fall in a sanctioned region.

    The clock column is exempt (global clock state rides along with any
    partial) and so are the IOB edge columns (module IO must reach pads);
    BRAM interconnect/content writes are never sanctioned by a CLB-rect
    policy and always flag.

    Boundary routing legitimately spills a column-granularity partial
    into out-of-policy CLB columns, so those are skipped when the
    module's design proves them (``route_cols``, see
    :func:`~.containment.sanctioned_route_columns`) and degrade to
    warnings when no design is available to prove either way — the same
    bargain the ``C*`` family strikes.
    """
    findings: list[Finding] = []
    allowed = _sanctioned_columns(sanctioned)
    clb_writes: dict[int, list[FrameWrite]] = {}
    kind_writes: dict[str, list[FrameWrite]] = {}
    for w in model.writes:
        col = device.geometry.column(w.major)
        if col.kind in (ColumnKind.CLOCK, ColumnKind.IOB):
            continue
        if col.kind is ColumnKind.CLB:
            assert col.clb_col is not None
            if col.clb_col in allowed:
                continue
            if route_cols is not None and col.clb_col in route_cols:
                continue             # design-proven boundary routing
            clb_writes.setdefault(col.clb_col, []).append(w)
        else:
            kind_writes.setdefault(
                f"{col.kind.value} column (major {w.major})", []
            ).append(w)
    policy = f"all {len(sanctioned)} sanctioned region(s)"
    severity = Severity.ERROR if route_cols is not None else Severity.WARNING
    proof = ("not sanctioned by the design's boundary routing"
             if route_cols is not None
             else "possibly boundary routing (no design to prove it)")
    for clb_col in sorted(clb_writes):
        writes = clb_writes[clb_col]
        w = writes[0]
        findings.append(Finding(
            T001, model.subject,
            f"{len(writes)} frame write(s) in CLB column {clb_col + 1}, "
            f"outside {policy} ({proof})",
            severity=severity,
            frame=w.index,
            address=w.address,
        ))
    for key in sorted(kind_writes):
        writes = kind_writes[key]
        w = writes[0]
        findings.append(Finding(
            T001, model.subject,
            f"{len(writes)} frame write(s) in {key}, outside {policy}",
            frame=w.index,
            address=w.address,
        ))
    return findings


def check_routing_tamper(
    device: Device,
    model: StreamModel,
    golden: FrameMemory,
    sanctioned: Sequence[RegionRect],
) -> list[Finding]:
    """T002: routing-plane edits must stay inside the sanctioned rows.

    For every written frame in the routing plane (minors >=
    ``PIP_MINOR_BASE``) of a sanctioned CLB column, the payload must
    match the golden base everywhere outside the rows the policy
    sanctions for that column.  Unsanctioned columns are T001's problem
    and skipped here.
    """
    findings: list[Finding] = []
    g = device.geometry
    mask_cache: dict[int, np.ndarray] = {}
    offenders: dict[int, list[int]] = {}
    first: dict[int, tuple[int, str, int]] = {}
    for w in model.writes:
        col = g.column(w.major)
        if col.kind is not ColumnKind.CLB or w.minor < PIP_MINOR_BASE:
            continue
        assert col.clb_col is not None
        spans = _row_bit_spans(device, sanctioned, col.clb_col)
        if not spans:
            continue                     # unsanctioned column: T001 territory
        words = _word_view(w.payload, g.frame_words)
        if words is None:
            continue                     # malformed burst: S004 territory
        allowed = mask_cache.get(col.clb_col)
        if allowed is None:
            allowed = _allowed_mask(device, spans)
            mask_cache[col.clb_col] = allowed
        diff = (words ^ golden.data[w.index]) & golden.payload_mask & ~allowed
        if not diff.any():
            continue
        offenders.setdefault(col.clb_col, []).append(w.index)
        if col.clb_col not in first:
            first[col.clb_col] = (w.index, w.address, _first_diff_bit(diff))
    for clb_col in sorted(offenders):
        frame, address, bit = first[clb_col]
        findings.append(Finding(
            T002, model.subject,
            f"{len(offenders[clb_col])} routing frame(s) of CLB column "
            f"{clb_col + 1} differ from the golden base outside the "
            f"sanctioned rows (first at frame bit {bit})",
            frame=frame,
            address=address,
        ))
    return findings


def check_readback_drift(
    device: Device,
    golden: FrameMemory,
    observed: FrameMemory,
    sanctioned: Sequence[RegionRect],
    *,
    subject: str = "readback",
) -> list[Finding]:
    """T003: a readback may differ from golden only where policy says so.

    Sanctioned drift: frame bits within the sanctioned rows of sanctioned
    CLB columns (that is where deployed modules live), the clock column
    (global clock enables ride with deployments), and the IOB edge
    columns (module IO enables).  Everything else — unsanctioned CLB
    columns, out-of-row bits, BRAM columns — must match the golden base
    bit for bit.
    """
    findings: list[Finding] = []
    g = device.geometry
    drifted: list[tuple[int, str]] = []
    mask_cache: dict[int, np.ndarray] = {}
    for index in golden.diff_frames(observed):
        major, minor = g.frame_address(index)
        col = g.column(major)
        if col.kind in (ColumnKind.CLOCK, ColumnKind.IOB):
            continue
        diff = (observed.data[index] ^ golden.data[index]) & golden.payload_mask
        if col.kind is ColumnKind.CLB:
            assert col.clb_col is not None
            allowed = mask_cache.get(col.clb_col)
            if allowed is None:
                spans = _row_bit_spans(device, sanctioned, col.clb_col)
                allowed = _allowed_mask(device, spans)
                mask_cache[col.clb_col] = allowed
            diff = diff & ~allowed
        if diff.any():
            drifted.append((index, f"{major}.{minor}"))
    if drifted:
        frame, address = drifted[0]
        listing = ", ".join(str(f) for f, _ in drifted[:6])
        more = "..." if len(drifted) > 6 else ""
        findings.append(Finding(
            T003, subject,
            f"{len(drifted)} frame(s) drifted from the golden base outside "
            f"every sanctioned region (frames {listing}{more})",
            frame=frame,
            address=address,
        ))
    return findings
