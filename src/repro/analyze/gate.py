"""The pre-deploy gate: static analysis as a go/no-go check.

:class:`PreDeployGate` wraps a :class:`~repro.analyze.engine.RuleEngine`
for the runtime and serve layers: before any configuration bytes reach a
board (or a client), the gate decodes every stream statically, runs
duplicate/conflict detection across the set, and — on blocking findings
— raises :class:`~repro.errors.AnalysisError` carrying the findings, so
nothing is ever half-deployed.

The gate deliberately checks only the *partial* streams of a deployment:
the base configuration writes every frame of the device by construction,
so containment/conflict rules are meaningless for it.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..devices import Device
from ..errors import AnalysisError
from ..obs import current_metrics
from .engine import LintTarget, RuleEngine
from .findings import AnalysisReport


def _as_target(item: object) -> LintTarget:
    """Accept (name, bytes) pairs, DeployItem-likes, or LintTargets."""
    if isinstance(item, LintTarget):
        return item
    if isinstance(item, tuple) and len(item) == 2:
        name, data = item
        return LintTarget(str(name), data=bytes(data))
    name = getattr(item, "name", None)
    data = getattr(item, "stream", None)
    if data is None:
        data = getattr(item, "data", None)
    if name is None or data is None:
        raise TypeError(
            f"cannot lint {item!r}: expected a LintTarget, a (name, bytes) "
            f"pair, or an object with .name and .stream/.data"
        )
    return LintTarget(str(name), data=bytes(data))


class PreDeployGate:
    """Block deployments whose streams fail static analysis."""

    def __init__(self, device: Device | str, *, strict: bool = False,
                 conflicts: bool = True):
        self.engine = RuleEngine(device, conflicts=conflicts)
        self.strict = strict

    def check(self, items: Iterable[object]) -> AnalysisReport:
        """Analyze the streams; never raises on findings."""
        return self.engine.run([_as_target(i) for i in items])

    def require(self, items: Iterable[object]) -> AnalysisReport:
        """Analyze and raise :class:`AnalysisError` on blocking findings."""
        report = self.check(items)
        metrics = current_metrics()
        if not report.ok(strict=self.strict):
            blocking = (report.findings if self.strict else report.errors)
            metrics.count("analyze.gate.blocked")
            summary = "; ".join(
                f"{f.rule.id} {f.subject}: {f.message}" for f in blocking[:3]
            )
            more = f" (+{len(blocking) - 3} more)" if len(blocking) > 3 else ""
            raise AnalysisError(
                f"pre-deploy gate blocked {len(blocking)} finding(s): "
                f"{summary}{more}",
                findings=blocking,
            )
        metrics.count("analyze.gate.passed")
        return report
