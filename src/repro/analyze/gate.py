"""The pre-deploy gate: static analysis as a go/no-go check.

:class:`PreDeployGate` wraps a :class:`~repro.analyze.engine.RuleEngine`
for the runtime and serve layers: before any configuration bytes reach a
board (or a client), the gate decodes every stream statically, runs
duplicate/conflict detection across the set, and — on blocking findings
— raises :class:`~repro.errors.AnalysisError` carrying the findings, so
nothing is ever half-deployed.

The gate deliberately checks only the *partial* streams of a deployment:
the base configuration writes every frame of the device by construction,
so containment/conflict rules are meaningless for it.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..bitstream.frames import FrameMemory
from ..devices import Device
from ..errors import AnalysisError, UsageError
from ..flow.floorplan import RegionRect
from ..obs import current_metrics
from .engine import GoldenInput, LintTarget, RuleEngine
from .findings import AnalysisReport
from .tamper import check_readback_drift


def _as_target(item: object) -> LintTarget:
    """Accept (name, bytes) pairs, DeployItem-likes, or LintTargets."""
    if isinstance(item, LintTarget):
        return item
    if isinstance(item, tuple) and len(item) == 2:
        name, data = item
        return LintTarget(str(name), data=bytes(data))
    name = getattr(item, "name", None)
    data = getattr(item, "stream", None)
    if data is None:
        data = getattr(item, "data", None)
    if name is None or data is None:
        raise TypeError(
            f"cannot lint {item!r}: expected a LintTarget, a (name, bytes) "
            f"pair, or an object with .name and .stream/.data"
        )
    return LintTarget(str(name), data=bytes(data))


class PreDeployGate:
    """Block deployments whose streams fail static analysis.

    With a ``golden`` base and/or ``sanctioned`` regions attached, the
    tamper (``T*``) rules run too: unsanctioned frame writes and
    routing edits relative to the golden base block pre-deploy, and
    :meth:`require_readback` checks a post-deploy readback for drift.
    ``independence=True`` additionally requires every pair of streams in
    a multi-module deployment to prove a commuting effect (R002) —
    the Deployer's preflight before anything is transferred.
    """

    def __init__(self, device: Device | str, *, strict: bool = False,
                 conflicts: bool = True,
                 golden: GoldenInput | None = None,
                 sanctioned: list[RegionRect] | None = None,
                 independence: bool = False):
        self.engine = RuleEngine(device, conflicts=conflicts,
                                 golden=golden, sanctioned=sanctioned,
                                 independence=independence)
        self.strict = strict

    @property
    def drift_enabled(self) -> bool:
        """True when a golden base is attached (T003 is possible)."""
        return self.engine._golden_input is not None

    def check(self, items: Iterable[object]) -> AnalysisReport:
        """Analyze the streams; never raises on findings."""
        return self.engine.run([_as_target(i) for i in items])

    def require(self, items: Iterable[object]) -> AnalysisReport:
        """Analyze and raise :class:`AnalysisError` on blocking findings."""
        return self._enforce(self.check(items))

    def check_readback(self, observed: FrameMemory,
                       *, subject: str = "readback") -> AnalysisReport:
        """T003 readback-drift check against the attached golden base."""
        device = observed.device
        golden = self.engine.golden_frames(device)
        if golden is None:
            raise UsageError(
                "readback drift check needs a golden base: construct the "
                "gate with golden=..."
            )
        report = AnalysisReport(targets=[subject])
        report.extend(check_readback_drift(
            device, golden, observed, self.engine.sanctioned or [],
            subject=subject,
        ))
        return report

    def require_readback(self, observed: FrameMemory,
                         *, subject: str = "readback") -> AnalysisReport:
        """Check a readback and raise :class:`AnalysisError` on drift."""
        return self._enforce(self.check_readback(observed, subject=subject))

    def _enforce(self, report: AnalysisReport) -> AnalysisReport:
        metrics = current_metrics()
        if not report.ok(strict=self.strict):
            blocking = (report.findings if self.strict else report.errors)
            metrics.count("analyze.gate.blocked")
            summary = "; ".join(
                f"{f.rule.id} {f.subject}: {f.message}" for f in blocking[:3]
            )
            more = f" (+{len(blocking) - 3} more)" if len(blocking) > 3 else ""
            raise AnalysisError(
                f"pre-deploy gate blocked {len(blocking)} finding(s): "
                f"{summary}{more}",
                findings=blocking,
            )
        metrics.count("analyze.gate.passed")
        return report
