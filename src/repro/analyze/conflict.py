"""Cross-partial frame-conflict ("race") detection (the ``X*`` family).

Given N partials destined for concurrent deployment, two streams that
write the same frame with *different* content race: whichever lands last
wins, and the design on the device depends on deployment order.  The
static decoder records a content digest per frame write
(:class:`~repro.analyze.stream.FrameWrite`), so conflicts are detected
content-aware: identical payloads (e.g. shared clock-column state both
partials carry verbatim) commute and are not flagged.

``X003`` applies the same idea within a single stream — a frame written
twice by one partial — mirroring the assembler invariant
(:func:`repro.bitstream.assembler.partial_stream` refuses duplicate
frame indices outright).
"""

from __future__ import annotations

from itertools import combinations

from ..flow.floorplan import RegionRect
from .findings import Finding, Severity, rule
from .stream import StreamModel

X001 = rule("X001", "frame-conflict", Severity.ERROR,
            "two partials write the same frame with different content; "
            "deployment order decides which survives")
X002 = rule("X002", "region-overlap", Severity.WARNING,
            "the declared regions overlap; concurrent deployment is only "
            "safe if the partials never disagree on shared frames")
X003 = rule("X003", "duplicate-frame-write", Severity.ERROR,
            "one stream writes the same frame twice; later writes "
            "silently shadow earlier ones")


def check_duplicates(model: StreamModel) -> list[Finding]:
    """``X003``: repeated writes to one frame inside a single stream."""
    findings: list[Finding] = []
    seen: dict[int, str] = {}
    reported: set[int] = set()
    for w in model.writes:
        prev = seen.get(w.index)
        if prev is None:
            seen[w.index] = w.digest
            continue
        if w.index in reported:
            continue
        reported.add(w.index)
        same = prev == w.digest
        findings.append(Finding(
            X003, model.subject,
            f"frame {w.index} written more than once "
            f"({'identical' if same else 'differing'} content)",
            severity=Severity.WARNING if same else Severity.ERROR,
            frame=w.index,
            address=w.address,
        ))
    return findings


def check_conflicts(
    models: list[StreamModel],
    regions: dict[str, RegionRect] | None = None,
) -> list[Finding]:
    """``X001``/``X002`` across a set of partials deployed together."""
    findings: list[Finding] = []
    regions = regions or {}
    frame_maps = [(m, m.frames_by_index()) for m in models]
    for (ma, fa), (mb, fb) in combinations(frame_maps, 2):
        pair = f"{ma.subject}+{mb.subject}"
        shared = sorted(set(fa) & set(fb))
        conflicting = [i for i in shared if fa[i].digest != fb[i].digest]
        if conflicting:
            first = conflicting[0]
            findings.append(Finding(
                X001, pair,
                f"{len(conflicting)} frame(s) written by both with "
                f"differing content (first: frame {first})",
                frame=first,
                address=fa[first].address,
            ))
        ra, rb = regions.get(ma.subject), regions.get(mb.subject)
        if ra is not None and rb is not None and ra.overlaps(rb):
            findings.append(Finding(
                X002, pair,
                f"declared regions {ra.to_ucf()} and {rb.to_ucf()} overlap",
            ))
    return findings
