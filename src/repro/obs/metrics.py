"""Pipeline observability: stage timers, counters, and structured events.

The generation pipeline (parse -> verify -> clear -> replay -> frame
selection -> emit) is instrumented with *stages*: named spans whose wall
time and context are recorded as :class:`StageEvent` objects on the
:class:`Metrics` registry active in the current context.  Counters track
scalar totals (frames written, cache hits, bytes emitted); timers
aggregate per-stage statistics (count/total/min/max).

Activation is opt-in and scoped: library code always reports through
:func:`current_metrics`, which resolves to a do-nothing :class:`NullMetrics`
unless a caller has entered :func:`use_metrics`::

    from repro.obs import Metrics, use_metrics

    m = Metrics()
    with use_metrics(m):
        jpg.make_partial(...)
    print(m.timers["jpg.emit"].total, m.counters["jpg.frames_written"])

Scoping uses a :class:`contextvars.ContextVar`, so concurrent batch
workers can each bind the same (or different) registries explicitly; the
registry itself is thread-safe.  A pluggable *sink* — any callable taking
a :class:`StageEvent` — observes events as they happen (live progress,
structured logging); recorded events also stay on ``Metrics.events``
unless ``keep_events=False``.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from collections.abc import Callable, Iterable, Iterator, Mapping
from contextvars import ContextVar
from dataclasses import dataclass, field


@dataclass(frozen=True)
class StageEvent:
    """One completed pipeline stage: what ran, for how long, with what."""

    stage: str
    seconds: float
    detail: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"{self.stage} {1e3 * self.seconds:.2f}ms{' ' + extra if extra else ''}"


#: A sink receives every StageEvent the registry records.
Sink = Callable[[StageEvent], None]


@dataclass
class TimerStats:
    """Aggregate of every recording of one named timer."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = seconds if seconds < self.min else self.min
        self.max = seconds if seconds > self.max else self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class GaugeStats:
    """Last/extreme values of a sampled quantity (queue depth, pool size)."""

    last: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    updates: int = 0

    def set(self, value: float) -> None:
        self.last = value
        self.min = value if value < self.min else self.min
        self.max = value if value > self.max else self.max
        self.updates += 1


class ReservoirHistogram:
    """Bounded-memory value distribution with quantile export.

    Timers (:class:`TimerStats`) only keep totals and extremes, which is
    useless for tail latency: a p99 needs the *distribution*.  This class
    keeps a uniform random sample of at most ``capacity`` observations
    (Vitter's Algorithm R), so memory stays constant however many values
    stream through, while ``count``/``min``/``max``/``total`` stay exact.
    Quantiles are computed over the reservoir with linear interpolation —
    exact below ``capacity`` observations, a tight estimate above.

    The seeded private RNG keeps replacement deterministic for a given
    observation sequence (reproducible reports).  Instances are *not*
    internally locked; :class:`Metrics` serializes access under its own
    registry lock.
    """

    __slots__ = ("capacity", "count", "min", "max", "total", "_samples", "_rng")

    def __init__(self, capacity: int = 512, *, seed: int = 0):
        self.capacity = capacity
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")
        self.total = 0.0
        self._samples: list[float] = []
        self._rng = random.Random(seed)

    def record(self, value: float) -> None:
        """Observe one value (reservoir-sampled past ``capacity``)."""
        self.count += 1
        self.total += value
        self.min = value if value < self.min else self.min
        self.max = value if value > self.max else self.max
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of every observation."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the sampled distribution (0.0 when
        empty); ``quantile(0.5)`` is the median, ``quantile(0.99)`` the p99."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        pos = min(max(q, 0.0), 1.0) * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def quantiles(self, qs: Iterable[float] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` for the given fractions."""
        return {f"p{round(100 * q) if q < 1 else 100}": self.quantile(q) for q in qs}

    def samples(self) -> list[float]:
        """A copy of the current reservoir (for snapshots and merging)."""
        return list(self._samples)

    def absorb(self, count: int, samples: Iterable[float], *,
               total: float | None = None, min_value: float | None = None,
               max_value: float | None = None) -> None:
        """Fold another reservoir's snapshot into this one.

        The exact aggregates (``count``/``total``/``min``/``max``) add
        exactly when the caller passes them; the merged reservoir is a
        seeded uniform downsample of both sample sets — an approximation
        of the pooled distribution, the accepted trade for bounded memory.
        """
        incoming = list(samples)
        self.count += count
        self.total += sum(incoming) if total is None else total
        for value in incoming if min_value is None else (min_value, max_value):
            self.min = value if value < self.min else self.min
            self.max = value if value > self.max else self.max
        pool = self._samples + incoming
        if len(pool) > self.capacity:
            pool = self._rng.sample(pool, self.capacity)
        self._samples = pool


class Metrics:
    """Thread-safe registry of counters, timers, gauges, and stage events."""

    def __init__(self, *, sink: Sink | None = None, keep_events: bool = True):
        self._lock = threading.Lock()
        self.sink = sink
        self.keep_events = keep_events
        self.counters: dict[str, int] = {}
        self.timers: dict[str, TimerStats] = {}
        self.gauges: dict[str, GaugeStats] = {}
        self.histograms: dict[str, ReservoirHistogram] = {}
        self.events: list[StageEvent] = []

    # -- counters -------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero on first use)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self.counters.get(name, 0)

    # -- gauges ---------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Sample gauge ``name`` at ``value`` (tracks last/min/max)."""
        with self._lock:
            self.gauges.setdefault(name, GaugeStats()).set(value)

    def gauge_value(self, name: str) -> float:
        """Last sampled value of gauge ``name`` (0.0 if never sampled)."""
        with self._lock:
            g = self.gauges.get(name)
            return g.last if g is not None else 0.0

    # -- histograms -----------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Feed one value into histogram ``name`` (latency, sizes, depths)
        for later quantile export — independent of any timer."""
        with self._lock:
            self.histograms.setdefault(name, ReservoirHistogram()).record(value)

    def quantile(self, name: str, q: float) -> float:
        """The ``q``-quantile of histogram ``name`` (0.0 if never observed)."""
        with self._lock:
            h = self.histograms.get(name)
            return h.quantile(q) if h is not None else 0.0

    def latency_summary(self, prefix: str = "") -> dict[str, dict[str, float]]:
        """``{name: {count, mean, p50, p95, p99, max}}`` for every histogram
        whose name starts with ``prefix`` — the quantile view ``stats``
        endpoints export."""
        with self._lock:
            items = [(k, h) for k, h in sorted(self.histograms.items())
                     if k.startswith(prefix)]
            return {
                k: {"count": h.count, "mean": h.mean, **h.quantiles(),
                    "max": h.max if h.count else 0.0}
                for k, h in items
            }

    # -- timers / stages ------------------------------------------------------

    def record(self, stage: str, seconds: float, **detail: object) -> None:
        """Record a completed stage: updates the timer, feeds the stage's
        latency histogram (p50/p95/p99 export), and emits an event."""
        event = StageEvent(stage, seconds, detail)
        with self._lock:
            self.timers.setdefault(stage, TimerStats()).record(seconds)
            self.histograms.setdefault(stage, ReservoirHistogram()).record(seconds)
            if self.keep_events:
                self.events.append(event)
            sink = self.sink
        if sink is not None:
            sink(event)

    @contextlib.contextmanager
    def stage(self, name: str, **detail: object) -> Iterator[None]:
        """Time a pipeline stage: ``with metrics.stage("jpg.emit"): ...``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start, **detail)

    # -- aggregation ----------------------------------------------------------

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add; timers combine count/total/min/max (mean follows);
        gauges combine extremes, keep the snapshot's last value, and add
        update counts.  This is how the process backend folds per-worker
        registries into the parent's, so one report covers a whole pool.
        Events do not travel in snapshots and are not merged.
        """
        counters = snapshot.get("counters", {})
        timers = snapshot.get("timers", {})
        gauges = snapshot.get("gauges", {})
        histograms = snapshot.get("histograms", {})
        with self._lock:
            for name, n in counters.items():
                self.counters[name] = self.counters.get(name, 0) + n
            for name, t in timers.items():
                mine = self.timers.setdefault(name, TimerStats())
                mine.count += t["count"]
                mine.total += t["total"]
                mine.min = min(mine.min, t["min"])
                mine.max = max(mine.max, t["max"])
            for name, g in gauges.items():
                mine = self.gauges.setdefault(name, GaugeStats())
                mine.last = g["last"]
                mine.min = min(mine.min, g["min"])
                mine.max = max(mine.max, g["max"])
                mine.updates += g["updates"]
            for name, h in histograms.items():
                mine = self.histograms.setdefault(name, ReservoirHistogram())
                mine.absorb(h["count"], h.get("samples", ()),
                            total=h.get("total"), min_value=h.get("min"),
                            max_value=h.get("max"))

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """A plain-dict copy of every counter and timer (for reports)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "timers": {
                    k: {"count": t.count, "total": t.total, "min": t.min,
                        "max": t.max, "mean": t.mean}
                    for k, t in self.timers.items()
                },
                "gauges": {
                    k: {"last": g.last, "min": g.min, "max": g.max,
                        "updates": g.updates}
                    for k, g in self.gauges.items()
                },
                "histograms": {
                    k: {"count": h.count, "total": h.total, "min": h.min,
                        "max": h.max, "samples": h.samples(), **h.quantiles()}
                    for k, h in self.histograms.items()
                },
            }

    def stage_table(self) -> list[tuple[str, int, str, str]]:
        """Rows (stage, count, total, mean) sorted by total time, descending
        — ready for :func:`repro.utils.format_table`."""
        with self._lock:
            items = sorted(self.timers.items(), key=lambda kv: -kv[1].total)
        return [
            (name, t.count, f"{1e3 * t.total:.1f} ms", f"{1e3 * t.mean:.2f} ms")
            for name, t in items
        ]


class NullMetrics(Metrics):
    """The default registry: accepts everything, stores nothing."""

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def record(self, stage: str, seconds: float, **detail: object) -> None:
        pass

    def merge(self, snapshot: Mapping[str, object]) -> None:
        pass

    @contextlib.contextmanager
    def stage(self, name: str, **detail: object) -> Iterator[None]:
        yield


#: Process-wide fallback; never holds data.
NULL_METRICS = NullMetrics()

_current: ContextVar[Metrics] = ContextVar("repro_metrics", default=NULL_METRICS)


def current_metrics() -> Metrics:
    """The registry instrumented library code should report to."""
    return _current.get()


@contextlib.contextmanager
def use_metrics(metrics: Metrics) -> Iterator[Metrics]:
    """Bind ``metrics`` as the current registry for this context.

    Worker threads do not inherit the caller's context automatically;
    pool-based code must re-enter ``use_metrics`` inside each task (the
    batch engine does).
    """
    token = _current.set(metrics)
    try:
        yield metrics
    finally:
        _current.reset(token)


def recording_sink(into: list[StageEvent]) -> Sink:
    """A sink that appends events to ``into`` (handy in tests and demos)."""
    return into.append
