"""Observability layer: stage timers, counters, and structured events.

Every stage of the generation pipeline — XDL parse, verification, region
clearing, JBits replay, frame selection, stream assembly — reports to the
:class:`Metrics` registry bound in the current context (see
:func:`use_metrics`); with no registry bound, reporting is a no-op.  The
batch engine (:mod:`repro.batch`) binds one registry across its worker
pool so a whole run aggregates into a single set of counters, timers, and
:class:`StageEvent` records, optionally streamed to a pluggable sink.
"""

from .metrics import (
    NULL_METRICS,
    GaugeStats,
    Metrics,
    NullMetrics,
    ReservoirHistogram,
    Sink,
    StageEvent,
    TimerStats,
    current_metrics,
    recording_sink,
    use_metrics,
)

__all__ = [
    "NULL_METRICS", "GaugeStats", "Metrics", "NullMetrics",
    "ReservoirHistogram", "Sink", "StageEvent", "TimerStats",
    "current_metrics", "recording_sink", "use_metrics",
]
