"""What runs inside a process-pool worker.

One worker = one long-lived :class:`~repro.batch.engine.BatchJpg` built in
:func:`worker_init` over the parent's shared-memory base (attached
zero-copy, never cloned) and reused for every task the worker receives.
:func:`worker_task` is the unit of work the parent submits: generate one
item, then ship home a small pickle of

* the :class:`~repro.batch.engine.BatchItemResult` itself (the partial's
  bytes are the product; they are already small),
* a metrics snapshot of this task's counters/timers, merged into the
  parent registry so one report covers the whole pool, and
* any cleared-region states this task computed, encoded as
  :class:`~repro.exec.shm.FrameDelta` against the shared base — the
  parent re-seeds its own cache from these, so work done in a worker
  warms every later run.

With a disk-backed cache, workers share cleared states through the
filesystem instead and the delta list stays empty.

Both functions are module-level so they pickle by reference under the
``spawn`` start method.  ``JPG_EXEC_CRASH=<item name>`` (or ``*``) makes a
worker die mid-task with ``os._exit`` — the hook the crash tests use to
prove a broken pool aborts the batch loudly.  ``JPG_EXEC_CRASH_ONCE=
<flag-file>[:<item name>]`` crashes only while the flag file exists and
deletes it first, so exactly one worker dies — the hook the warm pool's
recycle-and-retry tests use.

:func:`warm_worker_main` is the warm-pool flavor of the same worker: the
same engine-over-shared-base setup, but a persistent request/reply loop
over a pipe, with replies serialized into this worker's slot of a shared
:class:`~repro.exec.shm.OutputArena` instead of pickled through the pipe.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from ..batch.cache import ClearedState, FrameCache
from ..errors import ExecError
from ..obs import Metrics
from .backend import mark_worker_process
from .shm import FrameDelta, ShmSpec, attach_frames

if TYPE_CHECKING:
    from ..batch.engine import BatchItem, BatchItemResult
    from ..flow.floorplan import RegionRect
    from ..flow.ncd import NcdDesign

#: One cleared state on the wire: (base key, region, dirty frames, delta).
ClearedRecord = tuple[str, "RegionRect", tuple[int, ...], FrameDelta]

#: Worker-global state set once by :func:`worker_init`.
_STATE: dict | None = None


class _RecordingCache(FrameCache):
    """An in-memory frame cache that remembers what it computed, as deltas
    against the shared base, so tasks can send those states home."""

    def __init__(self, base) -> None:
        super().__init__()
        self._base = base
        self._records: list[ClearedRecord] = []

    def _computed(self, base_key: str, region, value: ClearedState) -> None:
        frames, dirty = value
        self._records.append(
            (base_key, region, tuple(sorted(dirty)), FrameDelta.between(self._base, frames))
        )

    def drain(self) -> list[ClearedRecord]:
        records, self._records = self._records, []
        return records


def worker_init(
    part: str,
    spec: ShmSpec,
    base_design: "NcdDesign | None",
    full_size: int,
    cache_spec: tuple | None,
) -> None:
    """Pool initializer: attach the shared base and build this worker's
    engine.  Runs once per worker process."""
    global _STATE
    mark_worker_process()
    frames, shm = attach_frames(spec)
    if cache_spec is not None and cache_spec[0] == "disk":
        from ..serve.diskcache import DiskCache, PersistentFrameCache

        cache: FrameCache = PersistentFrameCache(
            DiskCache(cache_spec[1], max_bytes=cache_spec[2])
        )
    else:
        cache = _RecordingCache(frames)
    from ..batch.engine import BatchJpg

    engine = BatchJpg(
        part,
        frames,                  # zero-copy: full_size set, so no reparse/clone
        base_design,
        cache=cache,
        backend="serial",        # a worker never nests a pool
        full_size=full_size,
    )
    _STATE = {"engine": engine, "shm": shm, "cache": cache}


def _maybe_crash(item: "BatchItem") -> None:
    """Honor the crash-injection hooks (test-only; see module docstring).

    ``JPG_EXEC_CRASH`` kills every worker that touches the named item;
    ``JPG_EXEC_CRASH_ONCE=<flag-file>[:<name>]`` kills at most one worker —
    the flag file is consumed (unlinked) before dying, so a retry on a
    recycled worker succeeds.
    """
    crash = os.environ.get("JPG_EXEC_CRASH")
    if crash and crash in ("*", item.name):
        os._exit(17)  # simulate a dying worker (OOM kill, segfault)
    once = os.environ.get("JPG_EXEC_CRASH_ONCE")
    if once:
        flag, _, name = once.partition(":")
        if (not name or name in ("*", item.name)) and os.path.exists(flag):
            try:
                os.unlink(flag)
            except OSError:  # pragma: no cover - lost the unlink race
                return
            os._exit(17)


def _run_item(item: "BatchItem") -> tuple["BatchItemResult", dict, list[ClearedRecord]]:
    """Generate one item on this worker's engine and package the reply
    (result, metrics snapshot, cleared-region deltas)."""
    if _STATE is None:  # pragma: no cover - initializer cannot have failed silently
        raise ExecError("worker used before worker_init")
    _maybe_crash(item)
    engine = _STATE["engine"]
    cache = _STATE["cache"]
    # fresh per-task registry: a worker runs tasks one at a time, so
    # rebinding the engine's registry cleanly scopes the snapshot
    metrics = Metrics(keep_events=False)
    engine.metrics = metrics
    with metrics.stage("exec.task", item=item.name, pid=os.getpid()):
        result = engine.generate_one(item)
    cleared = cache.drain() if isinstance(cache, _RecordingCache) else []
    return result, metrics.snapshot(), cleared


def worker_task(item: "BatchItem") -> tuple["BatchItemResult", dict, list[ClearedRecord]]:
    """Generate one item in this worker; see the module docstring for the
    reply format.  (The :class:`ProcessBackend` task function.)"""
    return _run_item(item)


def warm_worker_main(
    idx: int,
    conn,
    part: str,
    spec: ShmSpec,
    base_design: "NcdDesign | None",
    full_size: int,
    cache_spec: tuple | None,
    arena_spec,
) -> None:
    """Entry point of one warm-pool worker process.

    Performs the same one-time setup as :func:`worker_init` (attach shared
    base, build a serial engine), attaches slot ``idx`` of the shared
    output arena, then serves a message loop on ``conn`` until told to
    stop:

    * ``("task", item)`` — run the item; pickle the reply and write it
      into this worker's arena slot, answering ``("arena", nbytes)``; if
      the reply outgrows the slot, answer ``("inline", payload)`` instead
      (the spill fallback).  Unexpected in-worker exceptions answer
      ``("err", traceback_text)`` — the worker survives, the parent
      raises.
    * ``("ping", None)`` — health check; answers ``("pong", pid)``.
    * ``("stop", None)`` — clean shutdown: close mappings and return.

    A worker that dies mid-task simply drops the pipe; the parent sees
    ``EOFError`` and recycles the seat.
    """
    import pickle
    import traceback

    from .shm import OutputArena

    worker_init(part, spec, base_design, full_size, cache_spec)
    arena = OutputArena.attach(arena_spec)
    try:
        while True:
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError):  # parent died or closed our pipe
                break
            if kind == "stop":
                break
            if kind == "ping":
                conn.send(("pong", os.getpid()))
                continue
            try:
                reply = pickle.dumps(_run_item(payload), protocol=pickle.HIGHEST_PROTOCOL)
            except SystemExit:  # os._exit never gets here; belt and braces
                raise
            except BaseException:
                conn.send(("err", traceback.format_exc()))
                continue
            nbytes = arena.write(idx, reply)
            if nbytes is None:
                conn.send(("inline", reply))
            else:
                conn.send(("arena", nbytes))
    finally:
        arena.close()
        conn.close()
        shm = _STATE["shm"] if _STATE else None
        if shm is not None:
            shm.close()
