"""Zero-copy frame-memory transport for the process backend.

The base configuration is by far the largest thing a pool worker needs —
on an XCV100 it is a few hundred kilobytes of frame words, and pickling
it into every worker (or worse, into every task) would dominate the cost
the process backend is supposed to remove.  :class:`SharedFrames` instead
publishes the parent's :class:`~repro.bitstream.frames.FrameMemory` once
through :mod:`multiprocessing.shared_memory`; workers *attach* to the
segment and wrap the mapped buffer in a read-only numpy view, so the base
crosses the process boundary zero-copy and exists in physical memory
exactly once.

Results travel the other way as :class:`FrameDelta` objects: only the
frames that differ from the shared base (their indices plus their raw
words), never a whole frame memory.  Between the two, task payloads and
results stay small — a parsed module, a region rectangle, a handful of
changed frames.

Lifecycle: the parent owns the segment (:meth:`SharedFrames.publish` /
:meth:`SharedFrames.unlink`); workers only ever attach and close.  A
CPython 3.x wart needs explicit handling: attaching registers the segment
with the process's ``resource_tracker`` as if the attacher owned it.
Under the ``fork`` start method children share the parent's tracker (the
duplicate registration dedupes harmlessly), but under ``spawn`` each
worker gets its *own* tracker, which would unlink the segment when the
worker exits — destroying it for everyone else.  :func:`attach_frames`
therefore unregisters after attaching on non-fork start methods.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..bitstream.frames import FrameMemory
from ..devices import get_device
from ..errors import ExecError


@dataclass(frozen=True)
class ShmSpec:
    """Everything a worker needs to attach to a published frame memory.

    Picklable and tiny — it rides in the pool initializer's arguments.
    """

    name: str      # shared-memory segment name
    device: str    # part name, e.g. "XCV100"
    frames: int    # array shape, so attach never trusts the segment size
    words: int


class SharedFrames:
    """A frame memory published read-only in shared memory (parent side)."""

    def __init__(self, shm: shared_memory.SharedMemory, spec: ShmSpec):
        self._shm = shm
        self.spec = spec

    @classmethod
    def publish(cls, frames: FrameMemory) -> "SharedFrames":
        """Copy ``frames`` into a new shared segment (the one copy there is)."""
        data = frames.data
        try:
            shm = shared_memory.SharedMemory(create=True, size=data.nbytes)
        except OSError as exc:  # pragma: no cover - /dev/shm full or absent
            raise ExecError(f"cannot create shared memory for base frames: {exc}") from exc
        view = np.ndarray(data.shape, dtype=np.uint32, buffer=shm.buf)
        view[:] = data
        spec = ShmSpec(shm.name, frames.device.name, data.shape[0], data.shape[1])
        return cls(shm, spec)

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (parent only, after the pool is gone)."""
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def attach_frames(spec: ShmSpec) -> tuple[FrameMemory, shared_memory.SharedMemory]:
    """Attach to a published base (worker side): a read-only, zero-copy
    :class:`FrameMemory` over the mapped segment, plus the handle to keep
    the mapping alive (close it when the worker dies; never unlink)."""
    try:
        shm = shared_memory.SharedMemory(name=spec.name)
    except FileNotFoundError as exc:
        raise ExecError(f"shared base frames {spec.name!r} are gone: {exc}") from exc
    if multiprocessing.get_start_method(allow_none=True) != "fork":
        # see module docstring: without this, a spawn-started worker's own
        # resource tracker unlinks the segment out from under the pool
        try:  # pragma: no cover - spawn-only path
            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
    device = get_device(spec.device)
    view = np.ndarray((spec.frames, spec.words), dtype=np.uint32, buffer=shm.buf)
    view.setflags(write=False)
    return FrameMemory(device, view), shm


@dataclass(frozen=True)
class FrameDelta:
    """Frames of one memory that differ from a shared base.

    ``indices`` are linear frame numbers; ``words`` is the raw uint32
    payload of those frames, row-major, serialized as bytes so the object
    pickles compactly.  This is the wire format of every cleared-region
    state a worker sends home.
    """

    indices: tuple[int, ...]
    words: bytes

    @classmethod
    def between(cls, base: FrameMemory, other: FrameMemory) -> "FrameDelta":
        """The delta that turns ``base`` into ``other``."""
        changed = base.diff_frames(other)
        if not changed:
            return cls((), b"")
        return cls(tuple(changed), other.data[changed].tobytes())

    def apply(self, base: FrameMemory) -> FrameMemory:
        """A clone of ``base`` with this delta's frames overwritten."""
        out = base.clone()
        if self.indices:
            rows = np.frombuffer(self.words, dtype=np.uint32).reshape(
                len(self.indices), base.data.shape[1]
            )
            out.data[list(self.indices)] = rows
        return out

    @property
    def nbytes(self) -> int:
        return len(self.words)
