"""Zero-copy frame-memory transport for the process backend.

The base configuration is by far the largest thing a pool worker needs —
on an XCV100 it is a few hundred kilobytes of frame words, and pickling
it into every worker (or worse, into every task) would dominate the cost
the process backend is supposed to remove.  :class:`SharedFrames` instead
publishes the parent's :class:`~repro.bitstream.frames.FrameMemory` once
through :mod:`multiprocessing.shared_memory`; workers *attach* to the
segment and wrap the mapped buffer in a read-only numpy view, so the base
crosses the process boundary zero-copy and exists in physical memory
exactly once.

Results travel the other way as :class:`FrameDelta` objects: only the
frames that differ from the shared base (their indices plus their raw
words), never a whole frame memory.  Between the two, task payloads and
results stay small — a parsed module, a region rectangle, a handful of
changed frames.

Lifecycle: the parent owns the segment (:meth:`SharedFrames.publish` /
:meth:`SharedFrames.unlink`); workers only ever attach and close.  A
CPython 3.x wart needs explicit handling: attaching registers the segment
with the process's ``resource_tracker`` as if the attacher owned it.
Under the ``fork`` start method children share the parent's tracker (the
duplicate registration dedupes harmlessly), but under ``spawn`` each
worker gets its *own* tracker, which would unlink the segment when the
worker exits — destroying it for everyone else.  :func:`attach_frames`
therefore unregisters after attaching on non-fork start methods.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..bitstream.frames import FrameMemory
from ..devices import get_device
from ..errors import ExecError


@dataclass(frozen=True)
class ShmSpec:
    """Everything a worker needs to attach to a published frame memory.

    Picklable and tiny — it rides in the pool initializer's arguments.
    """

    name: str      # shared-memory segment name
    device: str    # part name, e.g. "XCV100"
    frames: int    # array shape, so attach never trusts the segment size
    words: int


class SharedFrames:
    """A frame memory published read-only in shared memory (parent side)."""

    def __init__(self, shm: shared_memory.SharedMemory, spec: ShmSpec):
        self._shm = shm
        self.spec = spec

    @classmethod
    def publish(cls, frames: FrameMemory) -> "SharedFrames":
        """Copy ``frames`` into a new shared segment (the one copy there is)."""
        data = frames.data
        try:
            shm = shared_memory.SharedMemory(create=True, size=data.nbytes)
        except OSError as exc:  # pragma: no cover - /dev/shm full or absent
            raise ExecError(f"cannot create shared memory for base frames: {exc}") from exc
        view = np.ndarray(data.shape, dtype=np.uint32, buffer=shm.buf)
        view[:] = data
        spec = ShmSpec(shm.name, frames.device.name, data.shape[0], data.shape[1])
        return cls(shm, spec)

    @property
    def nbytes(self) -> int:
        """Size of the shared segment in bytes."""
        return self._shm.size

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (parent only, after the pool is gone)."""
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def attach_frames(spec: ShmSpec) -> tuple[FrameMemory, shared_memory.SharedMemory]:
    """Attach to a published base (worker side): a read-only, zero-copy
    :class:`FrameMemory` over the mapped segment, plus the handle to keep
    the mapping alive (close it when the worker dies; never unlink)."""
    try:
        shm = shared_memory.SharedMemory(name=spec.name)
    except FileNotFoundError as exc:
        raise ExecError(f"shared base frames {spec.name!r} are gone: {exc}") from exc
    if multiprocessing.get_start_method(allow_none=True) != "fork":
        # see module docstring: without this, a spawn-started worker's own
        # resource tracker unlinks the segment out from under the pool
        try:  # pragma: no cover - spawn-only path
            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
    device = get_device(spec.device)
    view = np.ndarray((spec.frames, spec.words), dtype=np.uint32, buffer=shm.buf)
    view.setflags(write=False)
    return FrameMemory(device, view), shm


@dataclass(frozen=True)
class ArenaSpec:
    """Everything a warm-pool worker needs to attach the output arena.

    Picklable and tiny — it rides in the worker's start-up arguments next
    to the :class:`ShmSpec` of the base frames.
    """

    name: str        # shared-memory segment name
    slots: int       # one slot per worker
    slot_bytes: int  # fixed slot capacity


class OutputArena:
    """A preallocated shared-memory result buffer for the warm pool.

    One fixed-size slot per worker: a worker serializes its reply into its
    own slot and sends only the byte count over the control pipe, so
    results cross the process boundary through memory the parent already
    mapped instead of being pickled through a pipe.  Slots are exclusive
    to their worker and the parent reads a slot only after the worker's
    reply message lands, so no locking is needed.

    A reply larger than ``slot_bytes`` falls back to inline pipe transport
    (the pool counts these as ``exec.pool.arena_spills``); the arena is a
    fast path, never a correctness constraint.

    Lifecycle mirrors :class:`SharedFrames`: the parent creates and
    eventually unlinks; workers attach (with the same resource-tracker
    unregistration wart) and only ever close.
    """

    #: Default slot capacity.  An XCV1000-scale reply (result + metrics
    #: snapshot + cleared-region deltas) pickles to ~100-300 KiB; 2 MiB
    #: leaves generous headroom without a meaningful footprint.
    DEFAULT_SLOT_BYTES = 2 * 1024 * 1024

    def __init__(self, shm: shared_memory.SharedMemory, spec: ArenaSpec,
                 *, owner: bool):
        self._shm = shm
        self.spec = spec
        self._owner = owner

    @classmethod
    def create(cls, slots: int, slot_bytes: int = DEFAULT_SLOT_BYTES) -> "OutputArena":
        """Allocate an arena with ``slots`` fixed-size slots (parent side)."""
        size = max(1, slots) * slot_bytes
        try:
            shm = shared_memory.SharedMemory(create=True, size=size)
        except OSError as exc:  # pragma: no cover - /dev/shm full or absent
            raise ExecError(f"cannot create output arena: {exc}") from exc
        return cls(shm, ArenaSpec(shm.name, slots, slot_bytes), owner=True)

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "OutputArena":
        """Attach to an existing arena (worker side; never unlinks)."""
        try:
            shm = shared_memory.SharedMemory(name=spec.name)
        except FileNotFoundError as exc:
            raise ExecError(f"output arena {spec.name!r} is gone: {exc}") from exc
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            try:  # pragma: no cover - spawn-only path (see attach_frames)
                resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:
                pass
        return cls(shm, spec, owner=False)

    @property
    def nbytes(self) -> int:
        """Total arena size in bytes (slots x slot capacity)."""
        return self._shm.size

    def write(self, slot: int, payload: bytes) -> int | None:
        """Copy ``payload`` into ``slot``; its length on success, ``None``
        if the payload exceeds the slot capacity (caller spills inline)."""
        if len(payload) > self.spec.slot_bytes:
            return None
        start = slot * self.spec.slot_bytes
        self._shm.buf[start:start + len(payload)] = payload
        return len(payload)

    def read(self, slot: int, nbytes: int) -> bytes:
        """The first ``nbytes`` of ``slot``, copied out of the segment."""
        if nbytes > self.spec.slot_bytes:
            raise ExecError(
                f"arena read of {nbytes} bytes exceeds slot capacity "
                f"{self.spec.slot_bytes}"
            )
        start = slot * self.spec.slot_bytes
        return bytes(self._shm.buf[start:start + nbytes])

    def close(self) -> None:
        """Drop this process's mapping (both sides; idempotent)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - live exported views
            pass

    def unlink(self) -> None:
        """Destroy the segment (parent only, after the pool is gone)."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


@dataclass(frozen=True)
class FrameDelta:
    """Frames of one memory that differ from a shared base.

    ``indices`` are linear frame numbers; ``words`` is the raw uint32
    payload of those frames, row-major, serialized as bytes so the object
    pickles compactly.  This is the wire format of every cleared-region
    state a worker sends home.
    """

    indices: tuple[int, ...]
    words: bytes

    @classmethod
    def between(cls, base: FrameMemory, other: FrameMemory) -> "FrameDelta":
        """The delta that turns ``base`` into ``other``."""
        changed = base.diff_frames(other)
        if not changed:
            return cls((), b"")
        return cls(tuple(changed), other.data[changed].tobytes())

    def apply(self, base: FrameMemory) -> FrameMemory:
        """A clone of ``base`` with this delta's frames overwritten."""
        out = base.clone()
        if self.indices:
            rows = np.frombuffer(self.words, dtype=np.uint32).reshape(
                len(self.indices), base.data.shape[1]
            )
            out.data[list(self.indices)] = rows
        return out

    @property
    def nbytes(self) -> int:
        """Payload size of the delta in bytes."""
        return len(self.words)
