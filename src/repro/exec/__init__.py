"""Execution backends for batch partial-bitstream generation.

Public surface of the backend subsystem (see :mod:`repro.exec.backend`
for the strategy classes and :mod:`repro.exec.shm` for the zero-copy
frame transport the process backend rides on)::

    from repro.exec import default_workers, get_backend

    engine = BatchJpg("XCV100", base, backend="process")
    report = engine.run(items)      # byte-identical to backend="serial"
    engine.close()                  # returns the pool + shared memory
"""

from ..errors import ExecError
from .backend import (
    BACKEND_NAMES,
    MAX_DEFAULT_WORKERS,
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_workers,
    get_backend,
    in_worker_process,
    mark_worker_process,
)
from .pool import WarmPool, WarmPoolBackend
from .shm import (
    ArenaSpec,
    FrameDelta,
    OutputArena,
    SharedFrames,
    ShmSpec,
    attach_frames,
)

__all__ = [
    "ArenaSpec",
    "BACKEND_NAMES",
    "MAX_DEFAULT_WORKERS",
    "Backend",
    "ExecError",
    "FrameDelta",
    "OutputArena",
    "ProcessBackend",
    "SerialBackend",
    "SharedFrames",
    "ShmSpec",
    "ThreadBackend",
    "WarmPool",
    "WarmPoolBackend",
    "attach_frames",
    "default_workers",
    "get_backend",
    "in_worker_process",
    "mark_worker_process",
]
