"""The warm worker pool: persistent forked workers behind a shared arena.

BENCH_5 measured the honest problem with the classic process backend: on
small batches the fork/attach cost of a fresh ``ProcessPoolExecutor``
dominates and parallelism is a net loss.  The warm pool closes that gap
by making every per-batch cost a per-*pool* cost:

* workers are forked **once** and reused across batches (and across serve
  requests — the scheduler and the batch engine share one pool);
* the shared-memory base frames are published and attached **once**, at
  spawn;
* replies come home through a preallocated :class:`~repro.exec.shm.
  OutputArena` — each worker owns one fixed slot and sends only a byte
  count over its control pipe — instead of being pickled through pipe
  buffers per task.

:class:`WarmPool` owns the full lifecycle: spawn, health-check
(:meth:`WarmPool.ping`, :meth:`WarmPool.ensure`), recycle-on-crash (a
dead worker is respawned in place and the task retried exactly once
before :class:`~repro.errors.ExecError`), drain, and shutdown.
:class:`WarmPoolBackend` adapts the pool to the :class:`~repro.exec.
backend.Backend` interface so ``backend="warm"`` plugs into ``BatchJpg``
and the serve scheduler unchanged.

Observability: the pool reports ``exec.pool.*`` metrics through the bound
engine's registry — gauges ``workers_alive`` and ``arena_bytes``,
counters ``tasks``, ``recycles``, ``retries``, and ``arena_spills`` (see
docs/API.md's metrics catalog).
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import ExecError
from .backend import Backend, _cache_spec, _ingest_reply, default_workers
from .shm import OutputArena, SharedFrames

if TYPE_CHECKING:
    from ..batch.cache import CacheStats
    from ..batch.engine import BatchItem, BatchJpg

#: How long (seconds) a clean shutdown waits for a worker before killing it.
_JOIN_TIMEOUT = 5.0

#: How long (seconds) :meth:`WarmPool.ping` waits for each pong.
_PING_TIMEOUT = 5.0


@dataclass
class _Seat:
    """One worker slot: the live process plus the parent end of its pipe.

    The seat index is stable for the pool's lifetime — it names the
    worker's arena slot — while the process occupying it may be recycled.
    """

    idx: int
    process: Any
    conn: Any


class WarmPool:
    """A persistent pool of forked workers over one shared base.

    Construct once, bind lazily to the first engine that runs on it, and
    keep it hot: ``BatchJpg`` batches and serve-scheduler requests both
    dispatch through :meth:`run_task`, and nothing is torn down between
    them.  Thread-safe — concurrent callers each check out an idle seat
    from an internal queue, so at most one task is in flight per worker.

    ``workers`` defaults to the :func:`~repro.exec.backend.
    default_workers` policy (``JPG_WORKERS`` wins, then CPU count capped
    at 8).  ``slot_bytes`` sizes each worker's arena slot; oversized
    replies fall back to inline pipe transport rather than failing.
    """

    def __init__(self, workers: int | None = None, *,
                 start_method: str | None = None,
                 slot_bytes: int = OutputArena.DEFAULT_SLOT_BYTES):
        self.workers = workers
        self.start_method = start_method
        self.slot_bytes = slot_bytes
        self._seats: list[_Seat] = []
        self._idle: queue.Queue[int] = queue.Queue()
        self._lock = threading.Lock()
        self._shared: SharedFrames | None = None
        self._arena: OutputArena | None = None
        self._engine: BatchJpg | None = None
        self._initargs: tuple | None = None
        self._ctx = None
        self._closed = False
        # lifetime counters, surfaced as exec.pool.* metrics by the backend
        self.tasks = 0
        self.recycles = 0
        self.retries = 0
        self.arena_spills = 0
        self._worker_hits = 0
        self._worker_misses = 0

    # -- lifecycle ------------------------------------------------------------

    def planned_workers(self) -> int:
        """How many workers this pool runs (or will run once bound)."""
        if self._seats:
            return len(self._seats)
        return self.workers or default_workers()

    @property
    def bound(self) -> bool:
        """True once the pool has spawned against an engine's base."""
        return self._engine is not None

    def bind(self, engine: "BatchJpg", workers: int | None = None) -> None:
        """Publish ``engine``'s base, allocate the arena, spawn workers.

        Idempotent for the same engine; binding a second engine raises
        (one pool serves one shared base).  Called lazily by
        :class:`WarmPoolBackend` on first use.
        """
        with self._lock:
            if self._engine is not None:
                if engine is not self._engine:
                    raise ExecError(
                        "warm pool is already bound to another engine; "
                        "use one WarmPool per shared base"
                    )
                return
            if self._closed:
                raise ExecError("warm pool is closed")
            method = self.start_method
            if method is None:
                method = ("fork" if "fork" in
                          multiprocessing.get_all_start_methods() else None)
            self._ctx = multiprocessing.get_context(method)
            n = workers or self.workers or default_workers()
            shared = SharedFrames.publish(engine.base_frames)
            try:
                arena = OutputArena.create(n, self.slot_bytes)
            except BaseException:
                shared.unlink()
                raise
            self._shared = shared
            self._arena = arena
            self._engine = engine
            self._initargs = (
                engine.part,
                shared.spec,
                engine.base_design,
                engine.full_size,
                _cache_spec(engine),
                arena.spec,
            )
            try:
                for idx in range(n):
                    self._seats.append(self._spawn(idx))
                    self._idle.put(idx)
            except BaseException:
                self._shutdown_locked()
                raise
            engine.metrics.gauge("exec.pool.workers_alive", n)
            engine.metrics.gauge("exec.pool.arena_bytes", arena.nbytes)
            engine.metrics.gauge("exec.shm_bytes", shared.nbytes)

    def _spawn(self, idx: int) -> _Seat:
        """Start the worker for seat ``idx`` (caller holds the lock or is
        single-threaded in bind)."""
        from .worker import warm_worker_main

        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=warm_worker_main,
            args=(idx, child_conn) + self._initargs,
            daemon=True,
            name=f"jpg-warm-{idx}",
        )
        process.start()
        child_conn.close()
        return _Seat(idx, process, parent_conn)

    def _recycle(self, idx: int) -> None:
        """Replace a dead worker in seat ``idx`` with a fresh fork."""
        with self._lock:
            if self._closed:
                raise ExecError("warm pool is closed")
            seat = self._seats[idx]
            seat.conn.close()
            if seat.process.is_alive():  # pragma: no cover - pipe died first
                seat.process.terminate()
            seat.process.join(_JOIN_TIMEOUT)
            self._seats[idx] = self._spawn(idx)
            self.recycles += 1

    def ping(self) -> dict[int, int]:
        """Health-check every worker: seat index -> pid for each worker
        that answers within the timeout.  Missing seats are dead (see
        :meth:`ensure`).  Only call when no tasks are in flight."""
        alive: dict[int, int] = {}
        for seat in self._seats:
            try:
                seat.conn.send(("ping", None))
                if seat.conn.poll(_PING_TIMEOUT):
                    kind, pid = seat.conn.recv()
                    if kind == "pong":
                        alive[seat.idx] = pid
            except (EOFError, OSError, BrokenPipeError):
                continue
        return alive

    def ensure(self) -> int:
        """Respawn any dead workers; the number recycled.  The serve path
        calls this between requests so a crashed worker never surfaces as
        request latency."""
        recycled = 0
        for seat in list(self._seats):
            if not seat.process.is_alive():
                self._recycle(seat.idx)
                recycled += 1
        return recycled

    def drain(self) -> None:
        """Block until every in-flight task has finished (all seats idle)."""
        held = [self._idle.get() for _ in range(len(self._seats))]
        for idx in held:
            self._idle.put(idx)

    def close(self) -> None:
        """Stop every worker, release the arena and shared base.  Waits for
        clean exits, escalates to ``terminate`` after a timeout.  Idempotent."""
        with self._lock:
            self._shutdown_locked()

    def _shutdown_locked(self) -> None:
        if self._closed and not self._seats:
            return
        for seat in self._seats:
            try:
                seat.conn.send(("stop", None))
            except (OSError, BrokenPipeError):
                pass
        for seat in self._seats:
            seat.process.join(_JOIN_TIMEOUT)
            if seat.process.is_alive():  # pragma: no cover - wedged worker
                seat.process.terminate()
                seat.process.join(_JOIN_TIMEOUT)
            seat.conn.close()
        self._seats = []
        self._idle = queue.Queue()
        if self._arena is not None:
            self._arena.unlink()
            self._arena = None
        if self._shared is not None:
            self._shared.unlink()
            self._shared = None
        self._engine = None
        self._closed = True

    # -- dispatch -------------------------------------------------------------

    def run_task(self, item: "BatchItem"):
        """Dispatch one item to an idle worker and return its raw reply.

        Checks a seat out of the idle queue (blocking if every worker is
        busy), sends the task, and reads the reply out of the worker's
        arena slot.  A worker that dies mid-task is recycled in place and
        the item retried exactly once; a second death raises
        :class:`ExecError` — a batch never silently loses items.
        """
        if self._engine is None:
            raise ExecError("warm pool used before bind()")
        idx = self._idle.get()
        try:
            for attempt in (0, 1):
                seat = self._seats[idx]
                try:
                    seat.conn.send(("task", item))
                    kind, payload = seat.conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    self._recycle(idx)
                    if attempt == 0:
                        self.retries += 1
                        continue
                    raise ExecError(
                        f"warm pool lost a worker twice on {item.name!r}; "
                        f"giving up after one recycle-and-retry"
                    ) from None
                self.tasks += 1
                if kind == "err":
                    raise ExecError(
                        f"warm-pool worker failed on {item.name!r}:\n{payload}"
                    )
                if kind == "arena":
                    return pickle.loads(self._arena.read(idx, payload))
                # oversized reply spilled to inline pipe transport
                self.arena_spills += 1
                return pickle.loads(payload)
        finally:
            self._idle.put(idx)

    def record_ingest(self, hits: int, misses: int) -> None:
        """Accumulate one reply's frame-cache counters (backend callback)."""
        self._worker_hits += hits
        self._worker_misses += misses

    def cache_stats(self) -> "CacheStats":
        """Frame-cache hits/misses as the pool's workers saw them."""
        from ..batch.cache import CacheStats

        return CacheStats(self._worker_hits, self._worker_misses)


class WarmPoolBackend(Backend):
    """``backend="warm"`` — the :class:`WarmPool` behind the standard
    :class:`~repro.exec.backend.Backend` interface.

    Construct with a shared :class:`WarmPool` to keep one hot pool across
    the batch engine and the serve scheduler, or let it build a private
    pool.  Binding rules match :class:`~repro.exec.backend.
    ProcessBackend`: the first engine that runs wins, and ``close()``
    shuts the pool down (call it from ``engine.close()`` as usual).
    """

    name = "warm"

    def __init__(self, workers: int | None = None, *,
                 pool: WarmPool | None = None,
                 start_method: str | None = None,
                 slot_bytes: int = OutputArena.DEFAULT_SLOT_BYTES):
        self.pool = pool if pool is not None else WarmPool(
            workers, start_method=start_method, slot_bytes=slot_bytes
        )
        # counter totals already pushed into the engine's registry, so
        # repeated runs report deltas rather than running totals
        self._reported: dict[str, int] = {}

    def planned_workers(self) -> int:
        """Worker count the pool runs with (sizes the scheduler's shepherds)."""
        return self.pool.planned_workers()

    def run(self, engine, items, workers=None):
        """Shepherd the manifest into the warm pool — one feeder thread
        per worker — and ingest replies in manifest order."""
        if not items:
            return []
        self.pool.bind(engine, workers)
        engine.metrics.count("exec.tasks", len(items))
        n = min(self.pool.planned_workers(), len(items))
        with engine.metrics.stage("exec.pool_map", backend=self.name,
                                  items=len(items), workers=n):
            with ThreadPoolExecutor(max_workers=n,
                                    thread_name_prefix="warm-shepherd") as pool:
                raw = list(pool.map(self.pool.run_task, items))
        results = [self._ingest(engine, r) for r in raw]
        self._gauge(engine)
        return results

    def run_one(self, engine, item):
        """Generate a single item on the hot pool (the serving path)."""
        self.pool.bind(engine, None)
        engine.metrics.count("exec.tasks")
        result = self._ingest(engine, self.pool.run_task(item))
        self._gauge(engine)
        return result

    def _ingest(self, engine, raw):
        result, hits, misses = _ingest_reply(engine, raw)
        self.pool.record_ingest(hits, misses)
        return result

    def _gauge(self, engine) -> None:
        """Refresh the pool's ``exec.pool.*`` gauges and counters after a
        run (counters are deltas since the previous refresh)."""
        pool = self.pool
        alive = sum(1 for s in pool._seats if s.process.is_alive())
        engine.metrics.gauge("exec.pool.workers_alive", alive)
        for name, total in (("exec.pool.tasks", pool.tasks),
                            ("exec.pool.recycles", pool.recycles),
                            ("exec.pool.retries", pool.retries),
                            ("exec.pool.arena_spills", pool.arena_spills)):
            prev = self._reported.get(name, 0)
            if total > prev:
                engine.metrics.count(name, total - prev)
                self._reported[name] = total

    def cache_stats(self, engine):
        """Hits/misses as the pool's workers saw them."""
        return self.pool.cache_stats()

    def close(self) -> None:
        """Shut the pool down (workers, arena, shared base).  Idempotent."""
        self.pool.close()
