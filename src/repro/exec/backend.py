"""Execution backends: how a batch of generations actually runs.

The batch engine used to be welded to one strategy (a thread pool).  This
module factors the strategy out into a small :class:`Backend` interface
with three implementations:

* :class:`SerialBackend` — items run inline on the calling thread.  The
  reference semantics; every other backend must match its output
  byte-for-byte.
* :class:`ThreadBackend` — a per-run ``ThreadPoolExecutor``.  Cheap to
  start and shares the in-process frame cache directly, but generation is
  CPU-bound numpy-plus-Python work, so the GIL caps the speedup.
* :class:`ProcessBackend` — a persistent ``ProcessPoolExecutor``.  The
  base frame memory is published once via :mod:`repro.exec.shm` and
  attached zero-copy by every worker; tasks and results are small
  pickles, and cleared-region states come home as dirty-frame deltas
  that re-seed the parent's cache.  This is the backend that scales with
  cores.
* ``"warm"`` — :class:`~repro.exec.pool.WarmPoolBackend`, the warm
  worker-pool daemon: the process backend's shared-base design with the
  per-batch costs (fork, attach, pipe-pickled replies) amortized into a
  persistent :class:`~repro.exec.pool.WarmPool` whose workers write
  results into a preallocated shared output arena.  Registered here by
  name but defined in :mod:`repro.exec.pool`.

Backends are engine-agnostic objects: ``run(engine, items)`` executes a
manifest for one :class:`~repro.batch.engine.BatchJpg` and returns results
in manifest order.  A backend failure (dead worker, lost shared memory)
raises :class:`~repro.errors.ExecError` and aborts the run — per-item
generation errors, by contrast, land on the item's result exactly as in
the serial path, so a batch never silently loses items.

:func:`default_workers` is the one sizing policy everything shares: the
``JPG_WORKERS`` environment variable wins, a pool worker always answers 1
(a process worker must never nest its own pool), and otherwise the CPU
count decides, capped at 8.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

from ..errors import ExecError

if TYPE_CHECKING:
    from ..batch.cache import CacheStats
    from ..batch.engine import BatchItem, BatchItemResult, BatchJpg

#: Worker cap when sizing from the CPU count (a generation pipeline stops
#: scaling well before the core counts of large hosts).
MAX_DEFAULT_WORKERS = 8

#: Set (via :func:`mark_worker_process`) inside pool worker processes so
#: nested sizing decisions collapse to 1.
_IN_WORKER = False


def mark_worker_process() -> None:
    """Record that this process is a pool worker (called by the worker
    initializer; never unset — workers die with the pool)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker_process() -> bool:
    """True when running inside a pool worker process."""
    return _IN_WORKER


def default_workers(limit: int | None = None) -> int:
    """How many workers a pool should get, absent an explicit count.

    Priority: the ``JPG_WORKERS`` environment variable, then 1 if this
    process is itself a pool worker (no nested pools), then the CPU count
    capped at :data:`MAX_DEFAULT_WORKERS`.  ``limit`` (e.g. the number of
    items) bounds the answer; the result is always >= 1.
    """
    env = os.environ.get("JPG_WORKERS")
    if env:
        try:
            n = int(env)
        except ValueError:
            raise ExecError(f"JPG_WORKERS must be an integer, got {env!r}") from None
        if n < 1:
            raise ExecError(f"JPG_WORKERS must be >= 1, got {n}")
    elif _IN_WORKER:
        n = 1
    else:
        n = min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS)
    if limit is not None:
        n = min(n, max(1, limit))
    return max(1, n)


class Backend(ABC):
    """Strategy for executing a manifest of independent generations."""

    #: Name used by ``--backend`` and reports.
    name: str = "?"

    @abstractmethod
    def run(
        self,
        engine: "BatchJpg",
        items: list["BatchItem"],
        workers: int | None = None,
    ) -> list["BatchItemResult"]:
        """Generate every item; results in manifest order.  Raises
        :class:`ExecError` if the backend itself fails."""

    def run_one(self, engine: "BatchJpg", item: "BatchItem") -> "BatchItemResult":
        """Generate a single item (the long-lived-service path).  Default:
        inline on the calling thread."""
        return engine.generate_one(item)

    def cache_stats(self, engine: "BatchJpg") -> "CacheStats":
        """Frame-cache accounting for a finished run.  In-process backends
        read the engine's cache; the process backend aggregates what its
        workers reported."""
        return engine.cache.stats

    def planned_workers(self) -> int | None:
        """The worker count this backend runs with, if it owns a pool of
        known size (``None`` otherwise).  Lets the serve scheduler size
        its shepherd threads to match."""
        return None

    def close(self) -> None:
        """Release pools / shared memory.  Idempotent."""


class SerialBackend(Backend):
    """Run items inline, one after another — the reference semantics."""

    name = "serial"

    def run(self, engine, items, workers=None):
        """Generate every item inline on the calling thread, in order."""
        return [engine.generate_one(item) for item in items]


class ThreadBackend(Backend):
    """A per-run thread pool (the engine's historical behavior)."""

    name = "thread"

    def __init__(self, workers: int | None = None):
        self.workers = workers

    def run(self, engine, items, workers=None):
        """Fan items out over a fresh thread pool sized by the usual
        worker policy; results come back in manifest order."""
        if not items:
            return []
        n = workers or self.workers or default_workers(limit=len(items))
        engine.metrics.gauge("exec.pool_workers", n)
        with ThreadPoolExecutor(max_workers=n) as pool:
            return list(pool.map(engine.generate_one, items))


class ProcessBackend(Backend):
    """A persistent process pool over a shared-memory base.

    Created lazily on first use and bound to one engine (its base frames
    are what the workers attached to); reuse across runs amortizes the
    fork/attach cost for services.  Call :meth:`close` (or
    ``engine.close()``) when done so the segment is unlinked.
    """

    name = "process"

    def __init__(self, workers: int | None = None, *, start_method: str | None = None):
        self.workers = workers
        self.start_method = start_method
        self._pool = None
        self._shared = None
        self._engine: BatchJpg | None = None
        self._resolved_workers = 0
        self._worker_hits = 0
        self._worker_misses = 0

    # -- pool lifecycle -------------------------------------------------------

    def _ensure_pool(self, engine: "BatchJpg", workers: int | None) -> None:
        if self._pool is not None:
            if engine is not self._engine:
                raise ExecError(
                    "process backend is already bound to another engine; "
                    "use one ProcessBackend per BatchJpg"
                )
            return
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        from .shm import SharedFrames
        from .worker import worker_init

        method = self.start_method
        if method is None:
            # fork is dramatically cheaper where it exists (no re-import,
            # parsed device models inherited); fall back to the default
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        ctx = multiprocessing.get_context(method)
        n = workers or self.workers or default_workers()
        shared = SharedFrames.publish(engine.base_frames)
        cache_spec = _cache_spec(engine)
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=n,
                mp_context=ctx,
                initializer=worker_init,
                initargs=(
                    engine.part,
                    shared.spec,
                    engine.base_design,
                    engine.full_size,
                    cache_spec,
                ),
            )
        except BaseException:
            shared.unlink()
            raise
        self._shared = shared
        self._engine = engine
        self._resolved_workers = n
        engine.metrics.gauge("exec.pool_workers", n)
        engine.metrics.gauge("exec.shm_bytes", shared.nbytes)

    def close(self) -> None:
        """Shut the pool down and unlink the shared base.  Idempotent."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._shared is not None:
            self._shared.unlink()
            self._shared = None
        self._engine = None

    # -- execution ------------------------------------------------------------

    def run(self, engine, items, workers=None):
        """Map the manifest over the worker pool; a dead worker aborts
        the whole batch with :class:`ExecError` (no silent losses)."""
        if not items:
            return []
        from concurrent.futures.process import BrokenProcessPool

        from .worker import worker_task

        self._ensure_pool(engine, workers)
        engine.metrics.count("exec.tasks", len(items))
        try:
            with engine.metrics.stage("exec.pool_map", backend=self.name,
                                      items=len(items), workers=self._resolved_workers):
                raw = list(self._pool.map(worker_task, items))
        except BrokenProcessPool as exc:
            # a worker died (OOM kill, crash, os._exit): the whole batch
            # aborts — partial results must never pass for a finished run
            self.close()
            raise ExecError(
                f"process backend lost a worker mid-batch ({len(items)} items "
                f"aborted): {exc}"
            ) from exc
        return [self._ingest(engine, r) for r in raw]

    def run_one(self, engine, item):
        """Generate a single item on the pool (the serving path)."""
        from concurrent.futures.process import BrokenProcessPool

        from .worker import worker_task

        self._ensure_pool(engine, None)
        engine.metrics.count("exec.tasks")
        try:
            raw = self._pool.submit(worker_task, item).result()
        except BrokenProcessPool as exc:
            self.close()
            raise ExecError(f"process backend lost a worker: {exc}") from exc
        return self._ingest(engine, raw)

    def _ingest(self, engine, raw):
        """Fold one worker reply into the parent (see :func:`_ingest_reply`)
        and accumulate its frame-cache counters."""
        result, hits, misses = _ingest_reply(engine, raw)
        self._worker_hits += hits
        self._worker_misses += misses
        return result

    def cache_stats(self, engine):
        """Hits/misses as the workers saw them (their caches did the work)."""
        from ..batch.cache import CacheStats

        return CacheStats(self._worker_hits, self._worker_misses)


def _ingest_reply(engine: "BatchJpg", raw) -> tuple:
    """Fold one worker reply into the parent engine.

    Merges the worker's metrics snapshot, re-seeds the parent's frame
    cache from the reply's cleared-state deltas, and returns
    ``(result, cache_hits, cache_misses)`` — the caller accumulates the
    counters into whatever owns the pool.  Shared by the process backend
    and the warm pool, so the reply protocol has exactly one reader.
    """
    result, snapshot, cleared = raw
    counters = snapshot.get("counters", {})
    hits = counters.get("framecache.hit", 0)
    misses = counters.get("framecache.miss", 0)
    engine.metrics.merge(snapshot)
    for base_key, region, dirty, delta in cleared:
        state = (delta.apply(engine.base_frames), frozenset(dirty))
        engine.cache.put(base_key, region, state)
    return result, hits, misses


def _cache_spec(engine: "BatchJpg"):
    """A picklable recipe for the worker-side cache: disk-backed workers
    rebuild the engine's persistent cache (sharing entries through the
    filesystem); everyone else gets a private in-memory cache whose
    computes come home as deltas."""
    disk = getattr(engine.cache, "disk", None)
    if disk is not None:
        return ("disk", disk.root, disk.max_bytes)
    return None


def _warm_backend():
    """Construct a :class:`~repro.exec.pool.WarmPoolBackend` (imported
    lazily: pool.py imports this module, so a top-level import would be
    circular)."""
    from .pool import WarmPoolBackend

    return WarmPoolBackend()


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
    "warm": _warm_backend,
}

#: Names accepted by ``--backend`` / ``backend=``.
BACKEND_NAMES = tuple(_BACKENDS)


def get_backend(backend: str | Backend) -> Backend:
    """Resolve a backend argument: a :class:`Backend` instance passes
    through, a name constructs the matching class."""
    if isinstance(backend, Backend):
        return backend
    factory = _BACKENDS.get(backend)
    if factory is None:
        raise ExecError(
            f"unknown backend {backend!r} (expected one of {', '.join(_BACKENDS)})"
        )
    return factory()
