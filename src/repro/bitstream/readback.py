"""Configuration readback: streaming frames back out of the device.

Readback is the inverse of configuration (XAPP138): the host syncs the
port, sets FAR, issues CMD=RCFG, and reads the FDRO register; the device
streams the addressed frames out.  JBits-era tools used it for debug and
for *readback verify* — proving the device holds exactly the intended
configuration — and `Testing FPGA Devices Using JBits` built device tests
on it.  This module builds the host-side command streams and decodes the
returned data.
"""

from __future__ import annotations

import numpy as np

from ..devices import Device
from ..errors import BitstreamError
from .frames import FrameMemory, frame_runs
from .packets import Command, Opcode, PacketWriter, Register, far_encode, type1_header, type2_header


def readback_command_stream(device: Device, start_frame: int, n_frames: int) -> bytes:
    """The words a host sends to read ``n_frames`` starting at a linear
    frame index."""
    g = device.geometry
    if n_frames <= 0:
        raise BitstreamError("readback of zero frames")
    if start_frame + n_frames > g.total_frames:
        raise BitstreamError(
            f"readback overruns frame space: {start_frame}+{n_frames} "
            f"of {g.total_frames}"
        )
    major, minor = g.frame_address(start_frame)
    w = PacketWriter()
    w.dummy()
    w.sync()
    w.command(Command.RCRC)
    w.write_reg(Register.FLR, g.flr_value)
    w.write_reg(Register.FAR, far_encode(major, minor))
    w.command(Command.RCFG)
    count = n_frames * g.frame_words
    if count <= 0x7FF:
        w.raw(type1_header(Opcode.READ, Register.FDRO, count))
    else:
        w.raw(type1_header(Opcode.READ, Register.FDRO, 0))
        w.raw(type2_header(Opcode.READ, count))
    w.command(Command.DESYNC)
    w.dummy()
    return w.to_bytes()


def decode_readback(device: Device, words: np.ndarray, n_frames: int) -> np.ndarray:
    """Frame matrix (n_frames x frame_words) from raw readback words."""
    fw = device.geometry.frame_words
    words = np.asarray(words, dtype=np.uint32)
    if words.size != n_frames * fw:
        raise BitstreamError(
            f"readback returned {words.size} words, expected {n_frames * fw}"
        )
    return words.reshape(n_frames, fw)


def verify_frames(
    expected: FrameMemory, got: np.ndarray, start_frame: int
) -> list[int]:
    """Compare readback data to the expected configuration; returns the
    linear indices of mismatching frames (empty = verified)."""
    n = got.shape[0]
    window = expected.data[start_frame:start_frame + n]
    bad = np.flatnonzero((window != got).any(axis=1))
    return [start_frame + int(i) for i in bad]


def capture_stream(device: Device) -> bytes:
    """Command stream issuing GCAPTURE: latch the user flip-flop states
    into the configuration memory's capture cells (for state readback)."""
    w = PacketWriter()
    w.dummy()
    w.sync()
    w.command(Command.RCRC)
    w.command(Command.GCAPTURE)
    w.command(Command.DESYNC)
    w.dummy()
    return w.to_bytes()


def grestore_stream(device: Device) -> bytes:
    """Command stream issuing GRESTORE: reload every flip-flop from its
    configured init value."""
    w = PacketWriter()
    w.dummy()
    w.sync()
    w.command(Command.RCRC)
    w.command(Command.GRESTORE)
    w.command(Command.DESYNC)
    w.dummy()
    return w.to_bytes()


def readback_plan(frame_indices) -> list[tuple[int, int]]:
    """Collapse target frames into (start, count) bursts, one FDRO read
    each (mirrors :func:`repro.bitstream.frames.frame_runs`)."""
    return frame_runs(frame_indices)
