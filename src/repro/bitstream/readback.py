"""Configuration readback: streaming frames back out of the device.

Readback is the inverse of configuration (XAPP138): the host syncs the
port, sets FAR, issues CMD=RCFG, and reads the FDRO register; the device
streams the addressed frames out.  JBits-era tools used it for debug and
for *readback verify* — proving the device holds exactly the intended
configuration — and `Testing FPGA Devices Using JBits` built device tests
on it.  This module builds the host-side command streams and decodes the
returned data.
"""

from __future__ import annotations

import numpy as np

from ..devices import Device
from ..errors import BitstreamError
from .frames import FrameMemory, frame_runs
from .packets import Command, Opcode, PacketWriter, Register, far_encode, type1_header, type2_header


def readback_command_stream(device: Device, start_frame: int, n_frames: int) -> bytes:
    """The words a host sends to read ``n_frames`` starting at a linear
    frame index."""
    g = device.geometry
    if n_frames <= 0:
        raise BitstreamError("readback of zero frames")
    if start_frame + n_frames > g.total_frames:
        raise BitstreamError(
            f"readback overruns frame space: {start_frame}+{n_frames} "
            f"of {g.total_frames}"
        )
    major, minor = g.frame_address(start_frame)
    w = PacketWriter()
    w.dummy()
    w.sync()
    w.command(Command.RCRC)
    w.write_reg(Register.FLR, g.flr_value)
    w.write_reg(Register.FAR, far_encode(major, minor))
    w.command(Command.RCFG)
    count = n_frames * g.frame_words
    if count <= 0x7FF:
        w.raw(type1_header(Opcode.READ, Register.FDRO, count))
    else:
        w.raw(type1_header(Opcode.READ, Register.FDRO, 0))
        w.raw(type2_header(Opcode.READ, count))
    w.command(Command.DESYNC)
    w.dummy()
    return w.to_bytes()


def decode_readback(device: Device, words: np.ndarray, n_frames: int) -> np.ndarray:
    """Frame matrix (n_frames x frame_words) from raw readback words."""
    fw = device.geometry.frame_words
    words = np.asarray(words, dtype=np.uint32)
    if words.size != n_frames * fw:
        raise BitstreamError(
            f"readback returned {words.size} words, expected {n_frames * fw}"
        )
    return words.reshape(n_frames, fw)


#: Per-device cache of capture-cell masks (devices are immutable singletons).
_capture_masks: dict[str, np.ndarray] = {}


def capture_mask(device: Device) -> np.ndarray:
    """Mask of the SLICE capture-cell bits, shaped like the frame matrix.

    GCAPTURE latches user flip-flop outputs into these configuration-memory
    cells, so a readback taken after a capture legitimately differs from
    the generated bitstream there: the cells hold *state*, not
    configuration.  Verify and scrub must ignore them or a running design
    would look permanently corrupted.
    """
    cached = _capture_masks.get(device.name)
    if cached is not None:
        return cached
    from ..devices.resources import SLICE

    g = device.geometry
    mask = np.zeros((g.total_frames, g.frame_words), dtype=np.uint32)
    for col in range(device.cols):
        for row in range(device.rows):
            for s in (0, 1):
                for field in (SLICE[s].CAPTURE_X, SLICE[s].CAPTURE_Y):
                    frame, bit = device.clb_bit_location(row, col, field.coords[0])
                    mask[frame, bit // 32] |= np.uint32(1 << (31 - bit % 32))
    _capture_masks[device.name] = mask
    return mask


def verify_frames(
    expected: FrameMemory,
    got: np.ndarray,
    start_frame: int,
    *,
    mask: np.ndarray | None = None,
) -> list[int]:
    """Compare readback data to the expected configuration; returns the
    linear indices of mismatching frames (empty = verified).

    ``mask`` (e.g. :func:`capture_mask`) marks bits to *ignore*: readback
    after GCAPTURE carries flip-flop state in the capture cells, which is
    not a configuration error.
    """
    n = got.shape[0]
    window = expected.data[start_frame:start_frame + n]
    diff = np.bitwise_xor(window, np.asarray(got, dtype=np.uint32))
    if mask is not None:
        diff = diff & ~mask[start_frame:start_frame + n]
    bad = np.flatnonzero(diff.any(axis=1))
    return [start_frame + int(i) for i in bad]


def capture_stream(device: Device) -> bytes:
    """Command stream issuing GCAPTURE: latch the user flip-flop states
    into the configuration memory's capture cells (for state readback)."""
    w = PacketWriter()
    w.dummy()
    w.sync()
    w.command(Command.RCRC)
    w.command(Command.GCAPTURE)
    w.command(Command.DESYNC)
    w.dummy()
    return w.to_bytes()


def grestore_stream(device: Device) -> bytes:
    """Command stream issuing GRESTORE: reload every flip-flop from its
    configured init value."""
    w = PacketWriter()
    w.dummy()
    w.sync()
    w.command(Command.RCRC)
    w.command(Command.GRESTORE)
    w.command(Command.DESYNC)
    w.dummy()
    return w.to_bytes()


def readback_plan(frame_indices) -> list[tuple[int, int]]:
    """Collapse target frames into (start, count) bursts, one FDRO read
    each (mirrors :func:`repro.bitstream.frames.frame_runs`)."""
    return frame_runs(frame_indices)
