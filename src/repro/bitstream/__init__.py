"""Bitstream substrate: frames, packets, CRC, .bit container, assembly,
interpretation.  See DESIGN.md section 2 for the format definition."""

from .assembler import full_bitfile, full_stream, partial_bitfile, partial_stream
from .bitfile import BitFile
from .crc import ConfigCrc
from .frames import FrameMemory, frame_runs
from .packets import Command, Opcode, PacketWriter, Register, far_decode, far_encode
from .reader import ConfigInterpreter, InterpreterStats, apply_bitstream, parse_bitstream

__all__ = [
    "BitFile", "Command", "ConfigCrc", "ConfigInterpreter", "FrameMemory",
    "InterpreterStats", "Opcode", "PacketWriter", "Register",
    "apply_bitstream", "far_decode", "far_encode", "frame_runs",
    "full_bitfile", "full_stream", "parse_bitstream", "partial_bitfile",
    "partial_stream",
]
