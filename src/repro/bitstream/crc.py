"""Configuration CRC, Virtex style.

The configuration logic maintains a 16-bit CRC over every word written to a
CRC-covered register: the 32 data bits are shifted in LSB-first, followed by
the 4-bit register address.  The polynomial is CRC-16 (x^16 + x^15 + x^2 +
1, 0x8005), implemented here in its reflected form (0xA001) with a
byte-wise lookup table so long FDRI bursts stay cheap.

Writing the accumulated value to the CRC register makes the device compare
and reset; the RCRC command resets the accumulator.
"""

from __future__ import annotations

import numpy as np

_POLY_REFLECTED = 0xA001


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY_REFLECTED if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()


class ConfigCrc:
    """Accumulating configuration CRC (16-bit)."""

    def __init__(self) -> None:
        self.value = 0

    def reset(self) -> None:
        self.value = 0

    def update_word(self, reg_addr: int, word: int) -> None:
        """Shift in one 32-bit register write: data LSB-first, then the
        4-bit register address."""
        crc = self.value
        w = word & 0xFFFFFFFF
        for _ in range(4):
            crc = (crc >> 8) ^ _TABLE[(crc ^ w) & 0xFF]
            w >>= 8
        a = reg_addr & 0xF
        for _ in range(4):
            crc = (crc >> 1) ^ _POLY_REFLECTED if (crc ^ a) & 1 else crc >> 1
            a >>= 1
        self.value = crc

    def update_words(self, reg_addr: int, words: np.ndarray | list[int]) -> None:
        """Shift in a burst of writes to one register (e.g. an FDRI block)."""
        crc = self.value
        table = _TABLE
        addr = reg_addr & 0xF
        for word in words:
            w = int(word)
            crc = (crc >> 8) ^ table[(crc ^ w) & 0xFF]
            w >>= 8
            crc = (crc >> 8) ^ table[(crc ^ w) & 0xFF]
            w >>= 8
            crc = (crc >> 8) ^ table[(crc ^ w) & 0xFF]
            w >>= 8
            crc = (crc >> 8) ^ table[(crc ^ w) & 0xFF]
            a = addr
            for _ in range(4):
                crc = (crc >> 1) ^ _POLY_REFLECTED if (crc ^ a) & 1 else crc >> 1
                a >>= 1
        self.value = crc


def crc_of(stream: list[tuple[int, int]]) -> int:
    """CRC of a sequence of (register address, word) writes, from reset."""
    acc = ConfigCrc()
    for addr, word in stream:
        acc.update_word(addr, word)
    return acc.value
