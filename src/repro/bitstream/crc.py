"""Configuration CRC, Virtex style.

The configuration logic maintains a 16-bit CRC over every word written to a
CRC-covered register: the 32 data bits are shifted in LSB-first, followed by
the 4-bit register address.  The polynomial is CRC-16 (x^16 + x^15 + x^2 +
1, 0x8005), implemented here in its reflected form (0xA001).

Two table layers keep long FDRI bursts cheap:

* single writes (:meth:`ConfigCrc.update_word`) use the classic byte-wise
  lookup table for the data bits plus a 16-entry table that shifts in the
  whole 4-bit register address at once;
* bursts (:meth:`ConfigCrc.update_words`) exploit that one word+address
  step is *affine over GF(2)* in (state, data, address): the per-word data
  contribution is computed for the entire burst in one vectorized numpy
  pass over four position tables, leaving only a 2-lookup-per-word carry
  loop for the serial state dependency.

Writing the accumulated value to the CRC register makes the device compare
and reset; the RCRC command resets the accumulator.
"""

from __future__ import annotations

import numpy as np

_POLY_REFLECTED = 0xA001


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY_REFLECTED if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()


def _build_nibble_table() -> list[int]:
    """4-bit analogue of the byte table (shifts in one register address)."""
    table = []
    for nibble in range(16):
        crc = nibble
        for _ in range(4):
            crc = (crc >> 1) ^ _POLY_REFLECTED if crc & 1 else crc >> 1
        table.append(crc)
    return table


_ADDR_TABLE = _build_nibble_table()


def _step(crc: int, word: int, addr: int) -> int:
    """One full register write folded into the CRC (reference form)."""
    w = word & 0xFFFFFFFF
    for _ in range(4):
        crc = (crc >> 8) ^ _TABLE[(crc ^ w) & 0xFF]
        w >>= 8
    return (crc >> 4) ^ _ADDR_TABLE[(crc ^ addr) & 0xF]


def _build_burst_tables():
    """Precompute the affine decomposition of one word+address step.

    ``_step(crc, w, a)`` is linear over GF(2) in the bits of ``crc``,
    ``w``, and ``a`` jointly, so it splits as ``A(crc) ^ G(w) ^ C(a)``:

    * ``A`` (the state carry) as two 256-entry tables over the state's
      high/low bytes;
    * ``G`` (the data contribution) as four 256-entry tables, one per
      byte position — evaluated for a whole burst in one numpy pass;
    * ``C`` (the address contribution) as a 16-entry constant table.
    """
    a_lo = [_step(x, 0, 0) for x in range(256)]
    a_hi = [_step(x << 8, 0, 0) for x in range(256)]
    g = [np.array([_step(0, b << (8 * k), 0) for b in range(256)], dtype=np.uint16)
         for k in range(4)]
    addr_c = np.array([_step(0, 0, a) for a in range(16)], dtype=np.uint16)
    return a_lo, a_hi, g, addr_c


_A_LO, _A_HI, (_G0, _G1, _G2, _G3), _ADDR_CONTRIB = _build_burst_tables()


class ConfigCrc:
    """Accumulating configuration CRC (16-bit)."""

    def __init__(self) -> None:
        self.value = 0

    def reset(self) -> None:
        self.value = 0

    def update_word(self, reg_addr: int, word: int) -> None:
        """Shift in one 32-bit register write: data LSB-first, then the
        4-bit register address."""
        crc = self.value
        w = word & 0xFFFFFFFF
        for _ in range(4):
            crc = (crc >> 8) ^ _TABLE[(crc ^ w) & 0xFF]
            w >>= 8
        self.value = (crc >> 4) ^ _ADDR_TABLE[(crc ^ reg_addr) & 0xF]

    def update_words(self, reg_addr: int, words: np.ndarray | list[int]) -> None:
        """Shift in a burst of writes to one register (e.g. an FDRI block)."""
        payload = np.asarray(words)
        if payload.size == 0:
            return
        if payload.dtype != np.uint32:
            payload = payload.astype(np.uint64, copy=False).astype(np.uint32)
        # vectorized data+address contribution of every word in the burst
        contrib = (
            _G0[payload & 0xFF]
            ^ _G1[(payload >> np.uint32(8)) & 0xFF]
            ^ _G2[(payload >> np.uint32(16)) & 0xFF]
            ^ _G3[payload >> np.uint32(24)]
            ^ _ADDR_CONTRIB[reg_addr & 0xF]
        )
        # serial state carry: two table lookups per word
        crc = self.value
        a_hi = _A_HI
        a_lo = _A_LO
        for g in contrib.tolist():
            crc = a_hi[crc >> 8] ^ a_lo[crc & 0xFF] ^ g
        self.value = crc


def crc_of(stream: list[tuple[int, int]]) -> int:
    """CRC of a sequence of (register address, word) writes, from reset."""
    acc = ConfigCrc()
    for addr, word in stream:
        acc.update_word(addr, word)
    return acc.value
