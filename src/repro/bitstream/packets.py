"""Configuration packets: the wire format of (partial) bitstreams.

The transport follows the public Virtex configuration grammar (XAPP138):

* a stream of 32-bit words, starting with dummy words and the sync word
  ``0xAA995566``;
* **type-1 packets**: header word ``[31:29]=001``, ``[28:27]`` opcode
  (00 NOP, 01 read, 10 write), ``[26:13]`` register address, ``[10:0]``
  word count, followed by that many data words;
* **type-2 packets**: header ``[31:29]=010`` with a 27-bit word count, used
  after a zero-count type-1 to address long FDRI bursts.

Registers and commands cover the subset a (partial) configuration needs.
Every bitstream produced by this package — complete or partial, from
bitgen, JPG, or the PARBIT baseline — is a packet stream in this format,
and the config-port simulator accepts nothing else.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import PacketError

#: Padding word preceding synchronisation.
DUMMY_WORD = 0xFFFFFFFF
#: Synchronisation word.
SYNC_WORD = 0xAA995566


class Register(enum.IntEnum):
    """Configuration registers."""

    CRC = 0
    FAR = 1     # frame address
    FDRI = 2    # frame data input
    FDRO = 3    # frame data output (readback)
    CMD = 4
    CTL = 5
    MASK = 6
    STAT = 7
    LOUT = 8
    COR = 9     # configuration options
    FLR = 11    # frame length
    IDCODE = 12


class Command(enum.IntEnum):
    """CMD register opcodes."""

    NULL = 0
    WCFG = 1     # write configuration (FDRI writes frames)
    LFRM = 3     # last frame
    RCFG = 4     # read configuration (FDRO reads frames)
    START = 5    # begin startup sequence
    RCAP = 6
    RCRC = 7     # reset CRC
    AGHIGH = 8
    SWITCH = 9
    GRESTORE = 10
    SHUTDOWN = 11
    GCAPTURE = 12
    DESYNC = 13


class Opcode(enum.IntEnum):
    NOP = 0
    READ = 1
    WRITE = 2


#: Registers whose writes are folded into the running CRC.
CRC_COVERED: frozenset[Register] = frozenset(
    {Register.FAR, Register.FDRI, Register.CMD, Register.CTL, Register.COR,
     Register.FLR, Register.MASK, Register.IDCODE}
)

#: Header layout (UG002): opcode field at bit 27, type-2 word counts
#: occupy the low 27 bits.  Bit positions, not frame counts.
_OP_SHIFT = 27                      # not-a-frame-count
_TYPE2_COUNT_BITS = 27              # not-a-frame-count

_TYPE1_COUNT_MAX = (1 << 11) - 1
_TYPE2_COUNT_MAX = (1 << _TYPE2_COUNT_BITS) - 1


def type1_header(op: Opcode, reg: Register, count: int) -> int:
    if not 0 <= count <= _TYPE1_COUNT_MAX:
        raise PacketError(f"type-1 word count {count} out of range")
    return (0b001 << 29) | (int(op) << _OP_SHIFT) | (int(reg) << 13) | count


def type2_header(op: Opcode, count: int) -> int:
    if not 0 <= count <= _TYPE2_COUNT_MAX:
        raise PacketError(f"type-2 word count {count} out of range")
    return (0b010 << 29) | (int(op) << _OP_SHIFT) | count


def nop_word() -> int:
    """A type-1 NOP."""
    return type1_header(Opcode.NOP, Register.CRC, 0)


@dataclass(frozen=True)
class Header:
    """Decoded packet header."""

    type: int            # 1 or 2
    op: Opcode
    reg: Register | None  # None for type-2 (uses the previous type-1's reg)
    count: int


def decode_header(word: int) -> Header:
    ptype = (word >> 29) & 0x7
    op_bits = (word >> _OP_SHIFT) & 0x3
    if op_bits == 0b11:
        raise PacketError(f"reserved opcode in header 0x{word:08x}")
    op = Opcode(op_bits)
    if ptype == 0b001:
        reg_bits = (word >> 13) & 0x3FFF
        try:
            reg = Register(reg_bits)
        except ValueError:
            raise PacketError(f"unknown register {reg_bits} in header 0x{word:08x}") from None
        return Header(1, op, reg, word & 0x7FF)
    if ptype == 0b010:
        return Header(2, op, None, word & 0x7FFFFFF)
    raise PacketError(f"unknown packet type {ptype} in header 0x{word:08x}")


# -- frame addressing ---------------------------------------------------------

#: FAR field layout: block [27:25] (always 0 here), major [24:9], minor [8:0].
_FAR_MINOR_BITS = 9
_FAR_MAJOR_BITS = 16


def far_encode(major: int, minor: int) -> int:
    if not 0 <= major < (1 << _FAR_MAJOR_BITS):
        raise PacketError(f"FAR major {major} out of range")
    if not 0 <= minor < (1 << _FAR_MINOR_BITS):
        raise PacketError(f"FAR minor {minor} out of range")
    return (major << _FAR_MINOR_BITS) | minor


def far_decode(word: int) -> tuple[int, int]:
    return (word >> _FAR_MINOR_BITS) & ((1 << _FAR_MAJOR_BITS) - 1), word & (
        (1 << _FAR_MINOR_BITS) - 1
    )


# -- stream construction helper ------------------------------------------------


class PacketWriter:
    """Builds a configuration word stream, tracking the CRC as the device
    will compute it so the correct check word can be inserted."""

    def __init__(self) -> None:
        from .crc import ConfigCrc

        self.words: list[int] = []
        self._crc = ConfigCrc()
        self._arrays: list[np.ndarray] = []  # deferred large FDRI payloads

    # raw words -------------------------------------------------------------

    def raw(self, word: int) -> None:
        self._flush_arrays()
        self.words.append(word & 0xFFFFFFFF)

    def dummy(self, n: int = 1) -> None:
        for _ in range(n):
            self.raw(DUMMY_WORD)

    def sync(self) -> None:
        self.raw(SYNC_WORD)

    def nop(self, n: int = 1) -> None:
        for _ in range(n):
            self.raw(nop_word())

    # register writes ----------------------------------------------------------

    def write_reg(self, reg: Register, *values: int) -> None:
        self._flush_arrays()
        self.words.append(type1_header(Opcode.WRITE, reg, len(values)))
        for v in values:
            v &= 0xFFFFFFFF
            self.words.append(v)
            if reg in CRC_COVERED:
                self._crc.update_word(int(reg), v)

    def command(self, cmd: Command) -> None:
        self.write_reg(Register.CMD, int(cmd))
        if cmd is Command.RCRC:
            self._crc.reset()

    def write_fdri(self, payload: np.ndarray) -> None:
        """Write a frame-data burst (type-1 + type-2 for long payloads)."""
        self._flush_arrays()
        payload = np.asarray(payload, dtype=np.uint32).ravel()
        n = payload.size
        if n <= _TYPE1_COUNT_MAX:
            self.words.append(type1_header(Opcode.WRITE, Register.FDRI, n))
        else:
            self.words.append(type1_header(Opcode.WRITE, Register.FDRI, 0))
            self.words.append(type2_header(Opcode.WRITE, n))
        self._arrays.append(payload)
        self._crc.update_words(int(Register.FDRI), payload)

    def write_crc_check(self) -> None:
        """Write the accumulated CRC so the device's comparison passes."""
        self.write_reg(Register.CRC, self._crc.value)
        self._crc.reset()

    # output ----------------------------------------------------------------------

    def _flush_arrays(self) -> None:
        if self._arrays:
            arrays = self._arrays
            self._arrays = []
            for a in arrays:
                self.words.extend(a.tolist())

    def to_words(self) -> np.ndarray:
        self._flush_arrays()
        return np.asarray(self.words, dtype=np.uint32)

    def to_bytes(self) -> bytes:
        from .. import utils

        return utils.words_to_bytes(self.to_words())
