"""FAR-rewrite relocation of configuration streams (mechanism only).

Relocating a partial bitstream to another column span needs exactly two
byte-level edits: every FAR write naming a shifted column gets its major
address remapped, and every CRC check word is recomputed (FAR writes are
CRC-covered, so shifting an address changes the running CRC).  Everything
else — packet headers, frame payloads, commands, padding — is preserved
byte for byte, which is what makes the relocated stream byte-identical
to regenerating the module at the target span.

The *policy* — whether a stream may be retargeted at all — is the R001
relocatability proof in :mod:`repro.analyze.relocate`; this module only
performs the rewrite and assumes the caller proved it safe.
"""

from __future__ import annotations

import numpy as np

from .. import utils
from ..errors import BitstreamError, PacketError
from .crc import ConfigCrc
from .packets import (
    CRC_COVERED,
    SYNC_WORD,
    Command,
    Opcode,
    Register,
    decode_header,
    far_decode,
    far_encode,
)


def rewrite_far_majors(data: bytes, major_map: dict[int, int]) -> bytes:
    """Rewrite FAR major addresses per ``major_map`` and fix the CRCs.

    Walks the stream the way the device's config logic would (sync hunt,
    type-1/type-2 packets, RCRC resets); FAR writes whose major appears in
    ``major_map`` are re-encoded with the mapped major (minor untouched),
    the running CRC is recomputed over the rewritten values, and each CRC
    check word is replaced with the recomputed value.  All other words
    pass through unchanged.

    Raises :class:`BitstreamError` on streams this walk cannot follow
    (malformed headers, truncated packets) — relocation must never guess.
    """
    trailing = len(data) % 4
    if trailing:
        raise BitstreamError(
            f"cannot relocate: stream length {len(data)} is not word aligned"
        )
    words = [int(w) for w in utils.bytes_to_words(data)]
    out = list(words)
    crc = ConfigCrc()
    synced = False
    i, n = 0, len(words)
    while i < n:
        if not synced:
            if words[i] == SYNC_WORD:
                synced = True
            i += 1
            continue
        try:
            hdr = decode_header(words[i])
        except PacketError as exc:
            raise BitstreamError(f"cannot relocate: {exc}") from None
        i += 1
        count, reg = hdr.count, hdr.reg
        if hdr.type == 2:
            raise BitstreamError(
                "cannot relocate: type-2 packet without a zero-count type-1"
            )
        if hdr.op is Opcode.NOP:
            continue
        if count == 0 and i < n:
            try:
                nxt = decode_header(words[i])
            except PacketError:
                nxt = None
            if nxt is not None and nxt.type == 2:
                i += 1
                count = nxt.count
        if hdr.op is Opcode.READ:
            continue
        assert reg is not None
        if i + count > n:
            raise BitstreamError(
                f"cannot relocate: truncated packet ({count} words promised, "
                f"{n - i} available)"
            )
        if reg is Register.FDRI:
            # frame payloads pass through untouched; fold them into the
            # running CRC in one vectorized update
            crc.update_words(
                int(reg), np.asarray(words[i:i + count], dtype=np.uint32)
            )
            i += count
            continue
        for j in range(i, i + count):
            value = words[j]
            if reg is Register.FAR:
                major, minor = far_decode(value)
                target = major_map.get(major)
                if target is not None:
                    value = far_encode(target, minor)
                    out[j] = value
            if reg is Register.CRC:
                out[j] = crc.value
                crc.reset()
            elif reg in CRC_COVERED:
                crc.update_word(int(reg), value)
            if reg is Register.CMD:
                try:
                    cmd = Command(value)
                except ValueError:
                    cmd = None
                if cmd is Command.RCRC:
                    crc.reset()
                elif cmd is Command.DESYNC:
                    synced = False
        i += count
    return utils.words_to_bytes(np.asarray(out, dtype=np.uint32))
