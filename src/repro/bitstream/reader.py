"""Configuration-stream interpreter.

:class:`ConfigInterpreter` consumes a word stream exactly the way the
device's configuration logic does: hunt for the sync word, decode type-1 /
type-2 packets, execute register writes, stream FDRI bursts into frame
memory with FAR auto-increment, accumulate and *check* the CRC.

It is both the off-line bitstream parser (``interpret(stream)``) and the
engine inside the SelectMAP config-port simulator — so a partial bitstream
is correct if and only if this class accepts it, which is what the test
suite leans on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import utils
from ..devices import Device
from ..errors import BitstreamError, CrcError, PacketError, SyncError
from .crc import ConfigCrc
from .frames import FrameMemory
from .packets import (
    CRC_COVERED,
    DUMMY_WORD,
    SYNC_WORD,
    Command,
    Opcode,
    Register,
    decode_header,
    far_decode,
)


@dataclass
class InterpreterStats:
    """What a configuration session did."""

    words_consumed: int = 0
    packets: int = 0
    frames_written: int = 0
    writes: list[tuple[int, int]] = field(default_factory=list)  # (start frame, count)
    crc_checks_passed: int = 0
    started: bool = False
    desynced: bool = False
    readback_requests: list[tuple[int, int]] = field(default_factory=list)
    frames_read: int = 0
    commands: list[Command] = field(default_factory=list)


class ConfigInterpreter:
    """Stateful configuration logic over a :class:`FrameMemory`."""

    def __init__(self, frames: FrameMemory, *, strict_idcode: bool = True):
        self.frames = frames
        self.device: Device = frames.device
        self.strict_idcode = strict_idcode
        self.stats = InterpreterStats()
        self._synced = False
        self._crc = ConfigCrc()
        self._regs: dict[Register, int] = {}
        self._cmd = Command.NULL
        self._far_linear = 0
        self._flr_checked = False
        #: words the device drives back out (FDRO readback data)
        self.output_words: list[np.ndarray] = []

    # -- public API -------------------------------------------------------------

    def feed_bytes(self, data: bytes) -> InterpreterStats:
        if len(data) % 4:
            # e.g. a transfer truncated mid-word: malformed config data,
            # not a programming error
            raise BitstreamError(
                f"configuration stream length {len(data)} is not word aligned"
            )
        return self.feed_words(utils.bytes_to_words(data))

    def feed_words(self, words: np.ndarray) -> InterpreterStats:
        words = np.asarray(words, dtype=np.uint32)
        i = 0
        n = words.size
        while i < n:
            if not self._synced:
                w = int(words[i])
                i += 1
                self.stats.words_consumed += 1
                if w == SYNC_WORD:
                    self._synced = True
                elif w != DUMMY_WORD:
                    # the real device ignores pre-sync noise; we only allow
                    # dummy padding so corrupt streams are caught early
                    raise SyncError(f"unexpected pre-sync word 0x{w:08x}")
                continue
            i = self._packet(words, i)
        return self.stats

    @property
    def synced(self) -> bool:
        return self._synced

    def register(self, reg: Register) -> int:
        """Last value written to a register (0 if never written)."""
        return self._regs.get(reg, 0)

    # -- packet execution ----------------------------------------------------------

    def _packet(self, words: np.ndarray, i: int) -> int:
        hdr = decode_header(int(words[i]))
        i += 1
        self.stats.words_consumed += 1
        self.stats.packets += 1
        count = hdr.count
        reg = hdr.reg
        if hdr.type == 2:
            raise PacketError("type-2 packet without a preceding zero-count type-1")
        if hdr.op is Opcode.NOP:
            return i
        if count == 0 and i < words.size:
            # a zero-count type-1 may be extended by a type-2 header
            nxt = decode_header(int(words[i]))
            if nxt.type == 2:
                if nxt.op != hdr.op:
                    raise PacketError("type-2 opcode does not match its type-1")
                i += 1
                self.stats.words_consumed += 1
                count = nxt.count
        if hdr.op is Opcode.READ:
            assert reg is not None
            if reg is Register.FDRO:
                self._read_frames(count)
            return i
        # WRITE
        assert reg is not None
        if i + count > words.size:
            raise PacketError(
                f"truncated packet: {count} data words promised, "
                f"{words.size - i} available"
            )
        data = words[i:i + count]
        i += count
        self.stats.words_consumed += count
        self._write(reg, data)
        return i

    def _write(self, reg: Register, data: np.ndarray) -> None:
        if reg is Register.FDRI:
            self._crc.update_words(int(reg), data)
            self._write_frames(data)
            return
        for w in data:
            w = int(w)
            if reg in CRC_COVERED:
                self._crc.update_word(int(reg), w)
            self._regs[reg] = w
            self._execute(reg, w)

    def _execute(self, reg: Register, value: int) -> None:
        if reg is Register.CMD:
            self._command(Command(value))
        elif reg is Register.FAR:
            major, minor = far_decode(value)
            self._far_linear = self.device.geometry.frame_index(major, minor)
        elif reg is Register.FLR:
            if value != self.device.geometry.flr_value:
                raise BitstreamError(
                    f"FLR {value} does not match {self.device.name} "
                    f"(expected {self.device.geometry.flr_value})"
                )
            self._flr_checked = True
        elif reg is Register.IDCODE:
            if self.strict_idcode and value != self.device.part.idcode:
                raise BitstreamError(
                    f"IDCODE 0x{value:08x} does not match {self.device.name} "
                    f"(0x{self.device.part.idcode:08x})"
                )
        elif reg is Register.CRC:
            if value != self._crc.value:
                raise CrcError(
                    f"CRC mismatch: stream says 0x{value:04x}, "
                    f"device computed 0x{self._crc.value:04x}"
                )
            self.stats.crc_checks_passed += 1
            self._crc.reset()

    def _command(self, cmd: Command) -> None:
        self._cmd = cmd
        self.stats.commands.append(cmd)
        if cmd is Command.RCRC:
            self._crc.reset()
        elif cmd is Command.START:
            self.stats.started = True
        elif cmd is Command.DESYNC:
            self._synced = False
            self.stats.desynced = True

    def _read_frames(self, count: int) -> None:
        """Execute an FDRO read: stream frame data out of the device."""
        if self._cmd is not Command.RCFG:
            raise BitstreamError("FDRO read outside RCFG mode")
        if not self._flr_checked:
            raise BitstreamError("FDRO read before FLR was programmed")
        fw = self.device.geometry.frame_words
        if count % fw:
            raise BitstreamError(
                f"FDRO read of {count} words is not a multiple of the "
                f"frame length ({fw} words)"
            )
        nframes = count // fw
        start = self._far_linear
        end = start + nframes
        if end > self.device.geometry.total_frames:
            raise BitstreamError(
                f"FDRO read overruns frame space: frames {start}..{end - 1}"
            )
        self.output_words.append(self.frames.data[start:end].reshape(-1).copy())
        self.stats.readback_requests.append((start, nframes))
        self.stats.frames_read += nframes
        self._far_linear = end if end < self.device.geometry.total_frames else 0

    def take_output(self) -> np.ndarray:
        """Collect (and clear) the device's readback output words."""
        if not self.output_words:
            return np.zeros(0, dtype=np.uint32)
        out = np.concatenate(self.output_words)
        self.output_words = []
        return out

    def _write_frames(self, data: np.ndarray) -> None:
        if self._cmd is not Command.WCFG:
            raise BitstreamError("FDRI write outside WCFG mode")
        if not self._flr_checked:
            raise BitstreamError("FDRI write before FLR was programmed")
        fw = self.device.geometry.frame_words
        if data.size % fw:
            raise BitstreamError(
                f"FDRI burst of {data.size} words is not a multiple of the "
                f"frame length ({fw} words)"
            )
        nframes = data.size // fw
        start = self._far_linear
        end = start + nframes
        if end > self.device.geometry.total_frames:
            raise BitstreamError(
                f"FDRI burst overruns frame space: frames {start}..{end - 1} "
                f"of {self.device.geometry.total_frames}"
            )
        block = data.reshape(nframes, fw) & self.frames._payload_mask
        self.frames.data[start:end] = block
        self.stats.frames_written += nframes
        self.stats.writes.append((start, nframes))
        self._far_linear = end if end < self.device.geometry.total_frames else 0


def parse_bitstream(device: Device, data: bytes, **kwargs) -> tuple[FrameMemory, InterpreterStats]:
    """Interpret a raw config byte stream into a fresh frame memory."""
    fm = FrameMemory(device)
    interp = ConfigInterpreter(fm, **kwargs)
    stats = interp.feed_bytes(data)
    return fm, stats


def apply_bitstream(frames: FrameMemory, data: bytes, **kwargs) -> InterpreterStats:
    """Interpret a config byte stream on top of existing frame contents
    (how a partial bitstream lands on a configured device)."""
    interp = ConfigInterpreter(frames, **kwargs)
    return interp.feed_bytes(data)
