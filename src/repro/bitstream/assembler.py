"""Configuration-stream assembly: complete and partial bitstreams.

A **complete** stream configures every frame of the device and runs the
startup sequence:

    dummy, sync, RCRC, IDCODE, FLR, COR, MASK+CTL, FAR=0, WCFG,
    FDRI <all frames>, CRC, LFRM, START, DESYNC, dummy words

A **partial** stream writes only a set of frame runs, optionally without
touching startup state (the device keeps running — dynamic partial
reconfiguration):

    dummy, sync, RCRC, IDCODE, FLR, [per run: FAR, WCFG, FDRI <run>],
    CRC, LFRM, [START,] DESYNC

Frame data is written in linear frame order; the device auto-increments
FAR across minor and major boundaries, so one burst can span columns.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from ..devices import Device, packaged_name
from ..errors import BitstreamError
from ..obs import current_metrics
from .bitfile import BitFile
from .frames import FrameMemory, frame_runs
from .packets import Command, PacketWriter, Register, far_encode

#: Default configuration-options word (CCLK startup phase settings).
DEFAULT_COR = 0x0000_3FE5
#: Default control word (persist off, security off).
DEFAULT_CTL = 0x0000_0000


def _preamble(writer: PacketWriter, device: Device) -> None:
    writer.dummy()
    writer.sync()
    writer.command(Command.RCRC)
    writer.write_reg(Register.IDCODE, device.part.idcode)
    writer.write_reg(Register.FLR, device.geometry.flr_value)


def full_stream(frames: FrameMemory, *, cor: int = DEFAULT_COR, ctl: int = DEFAULT_CTL) -> bytes:
    """Serialize a complete configuration of the device."""
    device = frames.device
    metrics = current_metrics()
    with metrics.stage("assemble.full_stream", part=device.name,
                       frames=device.geometry.total_frames):
        w = PacketWriter()
        _preamble(w, device)
        w.write_reg(Register.COR, cor)
        w.write_reg(Register.MASK, 0xFFFFFFFF)
        w.write_reg(Register.CTL, ctl)
        w.write_reg(Register.FAR, far_encode(0, 0))
        w.command(Command.WCFG)
        w.write_fdri(frames.data.reshape(-1))
        w.write_crc_check()
        w.command(Command.LFRM)
        w.nop(4)
        w.command(Command.START)
        w.command(Command.DESYNC)
        w.dummy(4)
        data = w.to_bytes()
    metrics.count("assemble.full_streams")
    metrics.count("assemble.bytes_out", len(data))
    return data


def partial_stream(
    frames: FrameMemory,
    frame_indices: Iterable[int],
    *,
    startup: bool = False,
) -> bytes:
    """Serialize only the given linear frames of ``frames``.

    ``startup=False`` (the default) produces a *dynamic* partial bitstream:
    the device's startup state is untouched and user logic outside the
    written frames keeps running.  ``startup=True`` re-runs the startup
    sequence after the write (shutdown-style reconfiguration).
    """
    device = frames.device
    indices = list(frame_indices)
    duplicates: list[int] = []
    if len(indices) != len(set(indices)):
        counts = Counter(indices)
        duplicates = sorted(i for i, n in counts.items() if n > 1)
    if duplicates:
        shown = ", ".join(str(i) for i in duplicates[:6])
        raise BitstreamError(
            f"duplicate frame indices in partial: {shown}"
            + ("..." if len(duplicates) > 6 else "")
        )
    runs = frame_runs(indices)
    if not runs:
        raise BitstreamError("partial bitstream with no frames")
    metrics = current_metrics()
    with metrics.stage("assemble.partial_stream", part=device.name,
                       frames=sum(n for _, n in runs), runs=len(runs)):
        g = device.geometry
        w = PacketWriter()
        _preamble(w, device)
        for start, length in runs:
            major, minor = g.frame_address(start)
            # validate the run stays in range
            g.frame_address(start + length - 1)
            w.write_reg(Register.FAR, far_encode(major, minor))
            w.command(Command.WCFG)
            w.write_fdri(frames.data[start:start + length].reshape(-1))
        w.write_crc_check()
        w.command(Command.LFRM)
        w.nop(4)
        if startup:
            w.command(Command.START)
        w.command(Command.DESYNC)
        w.dummy(2)
        data = w.to_bytes()
    metrics.count("assemble.partial_streams")
    metrics.count("assemble.bytes_out", len(data))
    return data


def full_bitfile(frames: FrameMemory, design_name: str, **kwargs) -> BitFile:
    """Package a complete stream as a .bit file."""
    return BitFile(
        design_name=design_name,
        part_name=packaged_name(frames.device.name),
        config_bytes=full_stream(frames, **kwargs),
    )


def partial_bitfile(
    frames: FrameMemory,
    frame_indices: Iterable[int],
    design_name: str,
    **kwargs,
) -> BitFile:
    """Package a partial stream as a .bit file."""
    return BitFile(
        design_name=design_name,
        part_name=packaged_name(frames.device.name),
        config_bytes=partial_stream(frames, frame_indices, **kwargs),
    )
