"""Frame memory: the device's configuration SRAM, frame by frame.

A :class:`FrameMemory` is a dense numpy array of shape ``(total_frames,
frame_words)`` (dtype uint32).  It is the meeting point of the whole
package: bitgen fills it from a routed design, the assembler serializes it
into packets, the config-port simulator writes packets back into one, JBits
edits it with dirty-frame tracking, and the functional simulator decodes it
into a running circuit.

Bit order within a frame follows :mod:`repro.utils`: bit ``b`` is word
``b // 32``, position ``31 - b % 32`` (MSB first).  Bits beyond the payload
(:attr:`Geometry.frame_bits`) and the trailing pad word are forced to zero.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from .. import utils
from ..devices import Device
from ..devices.geometry import BITS_PER_ROW, IobSite
from ..devices.resources import BitCoord, Field
from ..errors import BitstreamError, DeviceError


class FrameMemory:
    """Configuration memory of one device."""

    def __init__(self, device: Device, data: np.ndarray | None = None):
        self.device = device
        g = device.geometry
        shape = (g.total_frames, g.frame_words)
        if data is None:
            data = np.zeros(shape, dtype=np.uint32)
        else:
            data = np.asarray(data, dtype=np.uint32)
            if data.shape != shape:
                raise BitstreamError(
                    f"frame data shape {data.shape} does not match {device.name} {shape}"
                )
        self.data = data
        self._payload_mask = self._build_payload_mask()

    def _build_payload_mask(self) -> np.ndarray:
        """Per-word mask of bits that belong to the frame payload."""
        g = self.device.geometry
        mask = np.zeros(g.frame_words, dtype=np.uint32)
        full, rem = divmod(g.frame_bits, 32)
        mask[:full] = 0xFFFFFFFF
        if rem:
            mask[full] = np.uint32(((1 << rem) - 1) << (32 - rem))
        return mask

    @property
    def payload_mask(self) -> np.ndarray:
        """Per-word mask of bits that belong to the frame payload."""
        return self._payload_mask

    # -- copying / equality ---------------------------------------------------

    def clone(self) -> "FrameMemory":
        return FrameMemory(self.device, self.data.copy())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FrameMemory)
            and other.device == self.device
            and bool(np.array_equal(other.data, self.data))
        )

    def __hash__(self) -> int:  # mutable; identity hash
        return id(self)

    # -- whole-frame access -----------------------------------------------------

    def frame(self, index: int) -> np.ndarray:
        """View of one frame's words (mutations must go through setters)."""
        self._check_frame(index)
        return self.data[index]

    def set_frame(self, index: int, words: np.ndarray | Iterable[int]) -> None:
        self._check_frame(index)
        w = np.asarray(list(words) if not isinstance(words, np.ndarray) else words,
                       dtype=np.uint32)
        if w.shape != (self.device.geometry.frame_words,):
            raise BitstreamError(
                f"frame {index}: expected {self.device.geometry.frame_words} words, "
                f"got {w.shape}"
            )
        self.data[index] = w & self._payload_mask

    def _check_frame(self, index: int) -> None:
        if not 0 <= index < self.data.shape[0]:
            raise DeviceError(
                f"frame index {index} out of range 0..{self.data.shape[0] - 1}"
            )

    def clear_bit_range(self, frame_start: int, frame_count: int,
                        bit_lo: int, bit_hi: int) -> list[int]:
        """Zero payload bits ``[bit_lo, bit_hi)`` of ``frame_count`` frames
        starting at ``frame_start``; returns the frames that changed.

        This is the vectorized hot path of region clearing: one numpy
        mask-and-compare over the whole frame block replaces per-bit
        ``get_bit``/``set_bit`` loops.
        """
        self._check_frame(frame_start)
        self._check_frame(frame_start + frame_count - 1)
        if not 0 <= bit_lo <= bit_hi <= self.device.geometry.frame_bits:
            raise BitstreamError(
                f"bit range [{bit_lo}, {bit_hi}) beyond frame payload "
                f"({self.device.geometry.frame_bits})"
            )
        mask = _bit_range_mask(self.device.geometry.frame_words, bit_lo, bit_hi)
        block = self.data[frame_start:frame_start + frame_count]
        hit = (block & mask).any(axis=1)
        if not hit.any():
            return []
        block[hit] &= ~mask
        return (np.flatnonzero(hit) + frame_start).tolist()

    def frames_equal(self, other: "FrameMemory", index: int) -> bool:
        return bool(np.array_equal(self.data[index], other.data[index]))

    def diff_frames(self, other: "FrameMemory") -> list[int]:
        """Linear indices of frames that differ from ``other``."""
        if other.device != self.device:
            raise BitstreamError("cannot diff frame memories of different parts")
        return np.flatnonzero((self.data != other.data).any(axis=1)).tolist()

    # -- single-bit access ---------------------------------------------------------

    def get_bit(self, frame: int, bit: int) -> int:
        self._check_frame(frame)
        return utils.get_bit(self.data[frame], bit)

    def set_bit(self, frame: int, bit: int, value: int) -> None:
        self._check_frame(frame)
        if bit >= self.device.geometry.frame_bits:
            raise BitstreamError(
                f"bit {bit} beyond frame payload ({self.device.geometry.frame_bits})"
            )
        utils.set_bit(self.data[frame], bit, value)

    # -- CLB resource access --------------------------------------------------------

    def get_field(self, row: int, col: int, field: Field) -> int:
        """Read a named tile field as an integer (coords[0] = MSB)."""
        value = 0
        for coord in field.coords:
            frame, bit = self.device.clb_bit_location(row, col, coord)
            value = (value << 1) | self.get_bit(frame, bit)
        return value

    def set_field(self, row: int, col: int, field: Field, value: int) -> None:
        if value < 0 or value >= (1 << field.width):
            raise BitstreamError(
                f"value {value} does not fit {field.name} ({field.width} bits)"
            )
        for i, coord in enumerate(field.coords):
            frame, bit = self.device.clb_bit_location(row, col, coord)
            self.set_bit(frame, bit, (value >> (field.width - 1 - i)) & 1)

    def get_coord(self, row: int, col: int, coord: BitCoord) -> int:
        frame, bit = self.device.clb_bit_location(row, col, coord)
        return self.get_bit(frame, bit)

    def set_coord(self, row: int, col: int, coord: BitCoord, value: int) -> None:
        frame, bit = self.device.clb_bit_location(row, col, coord)
        self.set_bit(frame, bit, value)

    # -- PIP access --------------------------------------------------------------------

    def get_pip(self, row: int, col: int, pip_index: int) -> int:
        frame, bit = self.device.pip_bit_location(row, col, pip_index)
        return self.get_bit(frame, bit)

    def set_pip(self, row: int, col: int, pip_index: int, value: int) -> None:
        frame, bit = self.device.pip_bit_location(row, col, pip_index)
        self.set_bit(frame, bit, value)

    def active_pips(self, row: int, col: int) -> list[int]:
        """Indices of PIPs currently on at a tile (decode helper)."""
        from ..devices.wires import NUM_PIPS

        return [p for p in range(NUM_PIPS) if self.get_pip(row, col, p)]

    # -- IOB / clock access ---------------------------------------------------------------

    def get_iob_enable(self, site: IobSite, which: int) -> int:
        frame, bit = self.device.iob_bit_location(site, which)
        return self.get_bit(frame, bit)

    def set_iob_enable(self, site: IobSite, which: int, value: int) -> None:
        frame, bit = self.device.iob_bit_location(site, which)
        self.set_bit(frame, bit, value)

    def get_bram_bit(self, site, bit: int) -> int:
        frame, off = self.device.geometry.bram_bit_location(site, bit)
        return self.get_bit(frame, off)

    def set_bram_bit(self, site, bit: int, value: int) -> None:
        frame, off = self.device.geometry.bram_bit_location(site, bit)
        self.set_bit(frame, off, value)

    def get_bram_word(self, site, addr: int, width: int = 16) -> int:
        """Read a data word from a block RAM (little-endian bit order)."""
        value = 0
        for k in range(width):
            value |= self.get_bram_bit(site, addr * width + k) << k
        return value

    def set_bram_word(self, site, addr: int, value: int, width: int = 16) -> None:
        for k in range(width):
            self.set_bram_bit(site, addr * width + k, (value >> k) & 1)

    def get_gclk_enable(self, g: int) -> int:
        frame, bit = self.device.gclk_bit_location(g)
        return self.get_bit(frame, bit)

    def set_gclk_enable(self, g: int, value: int) -> None:
        frame, bit = self.device.gclk_bit_location(g)
        self.set_bit(frame, bit, value)

    # -- bulk decode helpers ---------------------------------------------------------------

    def column_bits(self, clb_col: int) -> np.ndarray:
        """All frames of a CLB column as an (n_frames, frame_bits) bit
        matrix (48 minors on the classic geometry; specs may carry more).

        Vectorized (numpy ``unpackbits``) — this is the hot path of frame
        decoding (readback verify and the hardware functional simulator).
        """
        g = self.device.geometry
        major = g.major_of_clb_col(clb_col)
        base = g.frame_base(major)
        n_frames = g.columns[major].frames
        block = self.data[base:base + n_frames]
        raw = np.ascontiguousarray(block.astype(">u4")).view(np.uint8)
        bits = np.unpackbits(raw.reshape(n_frames, -1), axis=1)
        return bits[:, : g.frame_bits]

    def tile_bits(self, row: int, col: int, column_bits: np.ndarray | None = None) -> np.ndarray:
        """One tile's (n_frames, BITS_PER_ROW) configuration-bit plane."""
        g = self.device.geometry
        if column_bits is None:
            column_bits = self.column_bits(col)
        off = g.row_bit_offset(row)
        return column_bits[:, off:off + BITS_PER_ROW]

    # -- iteration ---------------------------------------------------------------------------

    def iter_frames(self) -> Iterator[tuple[int, np.ndarray]]:
        for i in range(self.data.shape[0]):
            yield i, self.data[i]

    def nonzero_frames(self) -> list[int]:
        """Frames with at least one bit set (cheap emptiness scan)."""
        return np.flatnonzero(self.data.any(axis=1)).tolist()


_MASK_CACHE: dict[tuple[int, int, int], np.ndarray] = {}


def _bit_range_mask(frame_words: int, bit_lo: int, bit_hi: int) -> np.ndarray:
    """Per-word mask with frame bits ``[bit_lo, bit_hi)`` set (MSB-first
    bit order, matching :mod:`repro.utils`).  Cached: region clears reuse
    the same few (offset, width) combinations thousands of times."""
    key = (frame_words, bit_lo, bit_hi)
    mask = _MASK_CACHE.get(key)
    if mask is None:
        mask = np.zeros(frame_words, dtype=np.uint32)
        for b in range(bit_lo, bit_hi):
            mask[b // 32] |= np.uint32(1 << (31 - b % 32))
        mask.setflags(write=False)
        _MASK_CACHE[key] = mask
    return mask


def frame_runs(frame_indices: Iterable[int]) -> list[tuple[int, int]]:
    """Collapse sorted linear frame indices into (start, length) runs.

    Used to turn a dirty-frame set into the minimal sequence of FAR/FDRI
    bursts in a partial bitstream.
    """
    runs: list[tuple[int, int]] = []
    start = prev = None
    for idx in sorted(set(frame_indices)):
        if start is None:
            start = prev = idx
        elif idx == prev + 1:
            prev = idx
        else:
            runs.append((start, prev - start + 1))
            start = prev = idx
    if start is not None:
        runs.append((start, prev - start + 1))
    return runs
