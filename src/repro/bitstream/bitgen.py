"""``bitgen`` equivalent: a routed NCD design becomes configuration frames.

Every placed bel, routed PIP, IOB enable and clock buffer is translated to
frame bits through the single resource map in :mod:`repro.devices.resources`
— the same map readback decoding uses, so ``decode(bitgen(design))``
recovers the design (a tested invariant).

LUT truth tables are stored *physically*: the router's ``pin_map`` permutes
the logical INIT onto the pins each input was actually routed to, and
unused physical pins become don't-cares (they read 0 in hardware).
"""

from __future__ import annotations

from ..devices import get_device
from ..devices.resources import SLICE
from ..errors import FlowError
from ..flow.ncd import NcdDesign
from ..netlist.library import expand_init
from ..obs import current_metrics
from .bitfile import BitFile
from .frames import FrameMemory


def generate_frames(design: NcdDesign, *, base: FrameMemory | None = None) -> FrameMemory:
    """Encode a placed-and-routed design into frame memory.

    With ``base`` given, bits are written on top of a copy of it (how a
    module drops onto an already-configured device); otherwise a blank
    frame memory is used.
    """
    metrics = current_metrics()
    with metrics.stage("bitgen.generate_frames", design=design.name,
                       slices=len(design.slices), nets=len(design.nets)):
        fm = _generate_frames(design, base)
    metrics.count("bitgen.designs")
    return fm


def _generate_frames(design: NcdDesign, base: FrameMemory | None) -> FrameMemory:
    device = get_device(design.part)
    if not design.placed():
        raise FlowError("bitgen requires a placed design")
    if not design.routed():
        raise FlowError("bitgen requires a routed design")
    fm = base.clone() if base is not None else FrameMemory(device)

    for comp in design.slices.values():
        r, c, s = comp.site
        res = SLICE[s]
        for bel in comp.bels.values():
            if bel.lut_cell is not None:
                pin_map = bel.pin_map or list(range(bel.lut_width))
                init = expand_init(bel.lut_init, bel.lut_width, 4, pin_map)
                fm.set_field(r, c, res.lut(bel.letter), init)
            if bel.ff_cell is not None:
                used = res.FFX_USED if bel.letter == "F" else res.FFY_USED
                init_f = res.FFX_INIT if bel.letter == "F" else res.FFY_INIT
                dmux = res.DXMUX if bel.letter == "F" else res.DYMUX
                fm.set_field(r, c, used, 1)
                fm.set_field(r, c, init_f, bel.ff_init)
                fm.set_field(r, c, dmux, 0 if bel.ff_d_from_lut else 1)
        has_ff = any(b.ff_cell for b in comp.bels.values())
        if has_ff:
            ff_sync = any(b.ff_cell and b.ff_sync for b in comp.bels.values())
            fm.set_field(r, c, res.SYNC_ATTR, int(ff_sync))
            fm.set_field(r, c, res.CE_USED, int(comp.ce_net is not None))
            fm.set_field(r, c, res.SR_USED, int(comp.sr_net is not None))

    for net in design.nets.values():
        for r, c, pip in net.pips:
            fm.set_pip(r, c, pip, 1)

    for iob in design.iobs.values():
        if iob.site is None:
            raise FlowError(f"IOB {iob.name} unplaced")
        fm.set_iob_enable(iob.site, 0 if iob.direction == "in" else 1, 1)

    for g in design.gclks.values():
        if g.index is None:
            raise FlowError(f"clock buffer {g.name} has no GCLK index")
        fm.set_gclk_enable(g.index, 1)

    return fm


def bitgen(design: NcdDesign, *, base: FrameMemory | None = None) -> BitFile:
    """Full bitgen: design -> frames -> complete .bit file."""
    from .assembler import full_bitfile

    frames = generate_frames(design, base=base)
    return full_bitfile(frames, design.name + ".ncd")
