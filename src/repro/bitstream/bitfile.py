"""``.bit`` file container: the Xilinx design-file wrapper around raw
configuration data.

The format is the classic one emitted by ``bitgen``: a fixed 13-byte magic
preamble, then tagged, length-prefixed fields —

====  ==========================================
 a    source design name (e.g. ``base.ncd``)
 b    part name (e.g. ``v300bg432``)
 c    creation date
 d    creation time
 e    4-byte big-endian length + raw config bytes
====  ==========================================
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field

from ..errors import BitfileError

#: The standard .bit preamble (a length-prefixed 9-byte field + 0x0001).
MAGIC = bytes(
    [0x00, 0x09, 0x0F, 0xF0, 0x0F, 0xF0, 0x0F, 0xF0, 0x0F, 0xF0, 0x00, 0x00, 0x01]
)


@dataclass
class BitFile:
    """A parsed (or to-be-written) .bit file."""

    design_name: str
    part_name: str
    date: str = "2002/04/15"
    time: str = "12:00:00"
    config_bytes: bytes = field(default=b"", repr=False)

    def to_bytes(self) -> bytes:
        out = io.BytesIO()
        out.write(MAGIC)

        def tagged(tag: bytes, payload: bytes) -> None:
            out.write(tag)
            out.write(struct.pack(">H", len(payload) + 1))
            out.write(payload + b"\x00")

        tagged(b"a", self.design_name.encode())
        tagged(b"b", self.part_name.encode())
        tagged(b"c", self.date.encode())
        tagged(b"d", self.time.encode())
        out.write(b"e")
        out.write(struct.pack(">I", len(self.config_bytes)))
        out.write(self.config_bytes)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "BitFile":
        if not data.startswith(MAGIC):
            raise BitfileError("not a .bit file (bad magic preamble)")
        pos = len(MAGIC)
        fields: dict[str, str] = {}
        config = b""
        while pos < len(data):
            tag = data[pos:pos + 1]
            pos += 1
            if tag == b"e":
                if pos + 4 > len(data):
                    raise BitfileError("truncated 'e' field length")
                (length,) = struct.unpack(">I", data[pos:pos + 4])
                pos += 4
                config = data[pos:pos + length]
                if len(config) != length:
                    raise BitfileError(
                        f"truncated config data: header says {length} bytes, "
                        f"found {len(config)}"
                    )
                pos += length
                break
            if tag in (b"a", b"b", b"c", b"d"):
                if pos + 2 > len(data):
                    raise BitfileError(f"truncated {tag!r} field length")
                (length,) = struct.unpack(">H", data[pos:pos + 2])
                pos += 2
                raw = data[pos:pos + length]
                if len(raw) != length:
                    raise BitfileError(f"truncated {tag!r} field")
                pos += length
                fields[tag.decode()] = raw.rstrip(b"\x00").decode()
            else:
                raise BitfileError(f"unknown .bit field tag {tag!r} at offset {pos - 1}")
        if "a" not in fields or "b" not in fields:
            raise BitfileError("missing mandatory .bit fields (a/b)")
        return cls(
            design_name=fields["a"],
            part_name=fields["b"],
            date=fields.get("c", ""),
            time=fields.get("d", ""),
            config_bytes=config,
        )

    def save(self, path: str) -> None:
        with open(path, "wb") as f:
            f.write(self.to_bytes())

    @classmethod
    def load(cls, path: str) -> "BitFile":
        with open(path, "rb") as f:
            return cls.from_bytes(f.read())

    @property
    def size(self) -> int:
        """Size of the configuration payload in bytes."""
        return len(self.config_bytes)
