"""JRoute-style run-time routing over a configured bitstream.

Keller's JRoute (FPL 1999) gave JBits users an API to route nets at run
time, directly in the bitstream, respecting whatever routing the current
configuration already uses.  :class:`JRoute` is that capability here:

* decode the occupied routing resources from the loaded frames,
* A*-search the device's PIP graph for a path from a source wire to each
  sink wire, avoiding wires that already carry signals,
* turn the winning PIPs on through the owning :class:`JBits` instance —
  so dirty-frame tracking keeps working and the edit ships as a normal
  partial bitstream.

Wires are addressed with the package's ``R<row>C<col>.<wire>`` notation
(1-based, e.g. ``R3C23.S0_X`` or ``R1C1.IO_IN0``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..devices import wires as W
from ..devices.wires import WIRE_DELAY_NS, WIRE_KIND, WireKind
from ..errors import RoutingError
from .api import JBits


@dataclass
class RouteResult:
    """One routed connection."""

    source: str
    sinks: list[str]
    pips: list[tuple[int, int, int]] = field(default_factory=list)
    delay_ns: dict[str, float] = field(default_factory=dict)

    @property
    def hops(self) -> int:
        return len(self.pips)


def parse_wire(device, spec: str) -> int:
    """``R3C23.S0_X`` -> routing node id."""
    try:
        tile, wire = spec.split(".", 1)
        if not tile.startswith("R"):
            raise ValueError
        r_txt, c_txt = tile[1:].split("C", 1)
        r, c = int(r_txt) - 1, int(c_txt) - 1
    except ValueError:
        raise RoutingError(f"bad wire spec {spec!r} (expected R<r>C<c>.<wire>)") from None
    device.geometry.check_tile(r, c)
    return device.node_id(r, c, W.wire_index(wire))


class JRoute:
    """Incremental router bound to a JBits instance."""

    def __init__(self, jbits: JBits):
        self.jbits = jbits
        self.device = jbits.device
        self._pips_by_src = W.pips_by_src()
        self._occupied: dict[int, tuple[int, int, int]] = {}
        self._scan()

    # -- occupancy ------------------------------------------------------------

    def _scan(self) -> None:
        """Decode which wires already have drivers (and by which PIP)."""
        fm = self.jbits.frames
        if fm is None:
            raise RoutingError("JBits instance has no bitstream loaded")
        dev = self.device
        from ..devices.resources import PIP_MINOR_BASE
        import numpy as np

        self._occupied.clear()
        for c in range(dev.cols):
            colbits = fm.column_bits(c)
            if not colbits[PIP_MINOR_BASE:].any():
                continue
            for r in range(dev.rows):
                tile = fm.tile_bits(r, c, colbits)
                plane = tile[PIP_MINOR_BASE:, :].ravel()[: W.NUM_PIPS]
                for p in np.flatnonzero(plane):
                    pip = W.PIP_TABLE[int(p)]
                    dst = dev.node_id(r, c, pip.dst)
                    self._occupied[dst] = (r, c, int(p))

    def occupied(self, spec_or_node: str | int) -> bool:
        """Does this wire already carry a signal?"""
        node = (
            parse_wire(self.device, spec_or_node)
            if isinstance(spec_or_node, str)
            else spec_or_node
        )
        return node in self._occupied

    # -- routing ------------------------------------------------------------------

    def route(
        self,
        source: str,
        sinks: list[str] | str,
        *,
        max_nodes: int = 200_000,
    ) -> RouteResult:
        """Route from ``source`` to each sink, avoiding used wires.

        Sinks are claimed one at a time; later sinks may branch from the
        already-built tree.  Raises :class:`RoutingError` (leaving the
        bitstream untouched) when no path exists.
        """
        dev = self.device
        if isinstance(sinks, str):
            sinks = [sinks]
        if not sinks:
            raise RoutingError("route() needs at least one sink")
        src_node = parse_wire(dev, source)
        sink_nodes = {s: parse_wire(dev, s) for s in sinks}
        for s, node in sink_nodes.items():
            if node in self._occupied:
                raise RoutingError(f"sink {s} already carries a signal")

        tree: set[int] = {src_node}
        prev: dict[int, tuple[int, tuple[int, int, int]]] = {}
        new_pips: list[tuple[int, int, int]] = []
        delays: dict[str, float] = {}

        for sink_name, sink_node in sink_nodes.items():
            tr, tc, _ = dev.node_of(sink_node)

            def h(node: int) -> float:
                r, c, _ = dev.node_of(node)
                return (abs(r - tr) + abs(c - tc)) * 0.2

            dist: dict[int, float] = {n: 0.0 for n in tree}
            came: dict[int, tuple[int, tuple[int, int, int]]] = {}
            heap = [(h(n), 0.0, n) for n in tree]
            heapq.heapify(heap)
            found = None
            popped = 0
            while heap:
                f, g, node = heapq.heappop(heap)
                popped += 1
                if popped > max_nodes:
                    break
                if g > dist.get(node, float("inf")):
                    continue
                if node == sink_node:
                    found = node
                    break
                for nxt, pip_ref in self._neighbors(node):
                    if nxt in self._occupied and nxt not in tree:
                        continue  # wire in use by the existing configuration
                    kind = WIRE_KIND[dev.node_of(nxt)[2]]
                    if kind in (WireKind.PIN_IN, WireKind.PIN_CLK, WireKind.IO_OUT) \
                            and nxt != sink_node:
                        continue  # don't route *through* someone's pin
                    ng = g + WIRE_DELAY_NS[kind] + 0.05
                    if ng < dist.get(nxt, float("inf")):
                        dist[nxt] = ng
                        came[nxt] = (node, pip_ref)
                        heapq.heappush(heap, (ng + h(nxt), ng, nxt))
            if found is None:
                raise RoutingError(
                    f"no free path from {source} to {sink_name} "
                    f"(explored {popped} nodes)"
                )
            # back-trace into the tree
            node = found
            path_delay = dist[found]
            while node not in tree:
                pnode, pip_ref = came[node]
                prev[node] = (pnode, pip_ref)
                new_pips.append(pip_ref)
                tree.add(node)
                node = pnode
            delays[sink_name] = path_delay

        # commit: flip the PIPs through JBits (dirty tracking included)
        for r, c, p in new_pips:
            self.jbits.set_pip(r, c, p, 1)
        for node, (_, pip_ref) in prev.items():
            self._occupied[node] = pip_ref
        return RouteResult(source, list(sinks), sorted(set(new_pips)), delays)

    def _neighbors(self, node: int):
        dev = self.device
        r, c, w = dev.node_of(node)
        kind = WIRE_KIND[w]
        fanout = self._pips_by_src.get(w, ())
        if kind is WireKind.LONG_H:
            for col in range(dev.cols):
                for odr, odc, pip in fanout:
                    if odr == 0 and odc == 0:
                        yield dev.node_id(r, col, pip.dst), (r, col, pip.index)
            return
        if kind is WireKind.LONG_V:
            for row in range(dev.rows):
                for odr, odc, pip in fanout:
                    if odr == 0 and odc == 0:
                        yield dev.node_id(row, c, pip.dst), (row, c, pip.index)
            return
        if kind is WireKind.GCLK:
            return  # global clocks are dedicated; not routable through JRoute
        for odr, odc, pip in fanout:
            orow, ocol = r + odr, c + odc
            if 0 <= orow < dev.rows and 0 <= ocol < dev.cols:
                yield dev.node_id(orow, ocol, pip.dst), (orow, ocol, pip.index)

    # -- unrouting ---------------------------------------------------------------------

    def unroute(self, source: str) -> int:
        """Remove the routing tree growing out of ``source``.

        Follows active PIPs forward from the source wire, turning them off
        (and freeing their destinations).  Returns the number of PIPs
        removed.
        """
        dev = self.device
        start = parse_wire(dev, source)
        removed = 0
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt, (pr, pc, pidx) in self._neighbors(node):
                if self._occupied.get(nxt) == (pr, pc, pidx) and self.jbits.get_pip(pr, pc, pidx):
                    self.jbits.set_pip(pr, pc, pidx, 0)
                    del self._occupied[nxt]
                    removed += 1
                    frontier.append(nxt)
        return removed
