"""XHWIF: the JBits hardware-interface abstraction.

The original XHWIF let JBits-based tools talk to any FPGA board through one
interface (get device info, send configuration data, read back, step
clocks).  :class:`Xhwif` is that contract; :class:`SimulatedXhwif` binds it
to the package's simulated board, and :class:`NullXhwif` is a sink for
"generate only, no hardware attached" runs (JPG option 1 in §3.2.1).
"""

from __future__ import annotations

import abc

import numpy as np

from ..bitstream.frames import FrameMemory
from ..errors import XhwifError
from ..hwsim.board import Board
from ..hwsim.configport import DEFAULT_CCLK_HZ, DownloadReport, PortMode, ReadbackReport


class Xhwif(abc.ABC):
    """Board-access contract used by JBits tools."""

    @abc.abstractmethod
    def get_device_name(self) -> str:
        """Part name of the attached device (e.g. ``XCV300``)."""

    @abc.abstractmethod
    def send(self, data: bytes) -> float:
        """Send configuration data; returns the transfer time in seconds."""

    @abc.abstractmethod
    def readback(self) -> FrameMemory:
        """Read the device's configuration memory back."""

    @abc.abstractmethod
    def clock_step(self, cycles: int) -> None:
        """Step the on-board clock."""

    def send_report(self, data: bytes) -> DownloadReport | None:
        """Send configuration data and return the port's download report
        when the transport exposes one (``None`` otherwise).  The report
        carries frames-written and CRC-check counts, which the runtime
        layer uses to validate a transfer."""
        self.send(data)
        return None

    def readback_window(self, start: int, count: int) -> tuple[np.ndarray, ReadbackReport]:
        """Read ``count`` frames starting at linear index ``start``.

        Windowed readback is optional; boards that only support full
        readback raise :class:`~repro.errors.XhwifError`."""
        raise XhwifError(f"{type(self).__name__} does not support windowed readback")

    def seconds_for(self, nbytes: int) -> float:
        """First-order transfer-time model: one byte per CCLK on the 8-bit
        SelectMAP port at the default clock (overridden by transports that
        know their real interface)."""
        return nbytes * 8 / PortMode.SELECTMAP.bits_per_cycle / DEFAULT_CCLK_HZ

    def connected(self) -> bool:
        return True


class SimulatedXhwif(Xhwif):
    """XHWIF bound to a simulated board."""

    def __init__(self, board: Board):
        self.board = board

    def get_device_name(self) -> str:
        return self.board.device.name

    def send(self, data: bytes) -> float:
        return self.board.download(data).seconds

    def send_report(self, data: bytes) -> DownloadReport:
        return self.board.download(data)

    def readback(self) -> FrameMemory:
        return self.board.readback()

    def readback_window(self, start: int, count: int) -> tuple[np.ndarray, ReadbackReport]:
        return self.board.readback_frames(start, count)

    def seconds_for(self, nbytes: int) -> float:
        return self.board.port.seconds_for(nbytes)

    def clock_step(self, cycles: int) -> None:
        self.board.clock(cycles)


class NullXhwif(Xhwif):
    """No hardware attached: sends are counted and timed with the SelectMAP
    first-order model, everything else fails."""

    def __init__(self, device_name: str = "XCV50", *, cclk_hz: float = DEFAULT_CCLK_HZ):
        self.device_name = device_name
        self.cclk_hz = float(cclk_hz)
        self.bytes_sent = 0

    def get_device_name(self) -> str:
        return self.device_name

    def seconds_for(self, nbytes: int) -> float:
        return nbytes * 8 / PortMode.SELECTMAP.bits_per_cycle / self.cclk_hz

    def send(self, data: bytes) -> float:
        self.bytes_sent += len(data)
        # a 0.0 return would poison every bytes/second computation downstream
        return self.seconds_for(len(data))

    def readback(self) -> FrameMemory:
        raise XhwifError("no hardware attached (NullXhwif)")

    def clock_step(self, cycles: int) -> None:
        raise XhwifError("no hardware attached (NullXhwif)")

    def connected(self) -> bool:
        return False
