"""XHWIF: the JBits hardware-interface abstraction.

The original XHWIF let JBits-based tools talk to any FPGA board through one
interface (get device info, send configuration data, read back, step
clocks).  :class:`Xhwif` is that contract; :class:`SimulatedXhwif` binds it
to the package's simulated board, and :class:`NullXhwif` is a sink for
"generate only, no hardware attached" runs (JPG option 1 in §3.2.1).
"""

from __future__ import annotations

import abc

from ..bitstream.frames import FrameMemory
from ..errors import XhwifError
from ..hwsim.board import Board


class Xhwif(abc.ABC):
    """Board-access contract used by JBits tools."""

    @abc.abstractmethod
    def get_device_name(self) -> str:
        """Part name of the attached device (e.g. ``XCV300``)."""

    @abc.abstractmethod
    def send(self, data: bytes) -> float:
        """Send configuration data; returns the transfer time in seconds."""

    @abc.abstractmethod
    def readback(self) -> FrameMemory:
        """Read the device's configuration memory back."""

    @abc.abstractmethod
    def clock_step(self, cycles: int) -> None:
        """Step the on-board clock."""

    def connected(self) -> bool:
        return True


class SimulatedXhwif(Xhwif):
    """XHWIF bound to a simulated board."""

    def __init__(self, board: Board):
        self.board = board

    def get_device_name(self) -> str:
        return self.board.device.name

    def send(self, data: bytes) -> float:
        return self.board.download(data).seconds

    def readback(self) -> FrameMemory:
        return self.board.readback()

    def clock_step(self, cycles: int) -> None:
        self.board.clock(cycles)


class NullXhwif(Xhwif):
    """No hardware attached: sends are counted, everything else fails."""

    def __init__(self, device_name: str = "XCV50"):
        self.device_name = device_name
        self.bytes_sent = 0

    def get_device_name(self) -> str:
        return self.device_name

    def send(self, data: bytes) -> float:
        self.bytes_sent += len(data)
        return 0.0

    def readback(self) -> FrameMemory:
        raise XhwifError("no hardware attached (NullXhwif)")

    def clock_step(self, cycles: int) -> None:
        raise XhwifError("no hardware attached (NullXhwif)")

    def connected(self) -> bool:
        return False
