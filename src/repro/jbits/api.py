"""JBits-style bitstream manipulation API.

Models the ``com.xilinx.JBits`` programming interface the paper builds on:
load a bitstream for a part, ``get``/``set`` named resources at (row, col),
flip PIPs, then write the result back out — either as a complete bitstream
or as a **partial bitstream containing only the frames touched since the
last sync point** (the capability JPG automates).

Like the original, the model is deliberately low level: a resource is a
tile coordinate plus a :class:`~repro.devices.resources.Field`, and one
``set`` dirties whole configuration frames (column granularity), which is
exactly why partial bitstreams come out column-shaped.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..bitstream.assembler import full_stream, partial_stream
from ..bitstream.bitfile import BitFile
from ..bitstream.frames import FrameMemory
from ..bitstream.reader import apply_bitstream
from ..devices import BITS_PER_ROW, Device, Field, IobSite, get_device
from ..devices.resources import SLICE
from ..devices.wires import PipDef, pip_by_wires
from ..errors import JBitsError


class JBits:
    """Bitstream-level device access for one part."""

    def __init__(self, part: str | Device):
        self.device: Device = part if isinstance(part, Device) else get_device(part)
        self.frames: FrameMemory | None = None
        self._dirty: set[int] = set()

    # -- loading --------------------------------------------------------------

    def read(self, data: bytes | BitFile | FrameMemory) -> None:
        """Load a complete bitstream (resets dirty tracking)."""
        if isinstance(data, FrameMemory):
            if data.device != self.device:
                raise JBitsError(
                    f"frame memory is for {data.device.name}, "
                    f"JBits instance is for {self.device.name}"
                )
            self.frames = data.clone()
        else:
            if isinstance(data, BitFile):
                data = data.config_bytes
            fm = FrameMemory(self.device)
            apply_bitstream(fm, data)
            self.frames = fm
        self._dirty.clear()

    def read_partial(self, data: bytes | BitFile) -> None:
        """Apply a partial bitstream on top of the loaded configuration."""
        fm = self._require()
        if isinstance(data, BitFile):
            data = data.config_bytes
        stats = apply_bitstream(fm, data)
        for start, count in stats.writes:
            self._dirty.update(range(start, start + count))

    def blank(self) -> None:
        """Start from an erased device (all frames zero)."""
        self.frames = FrameMemory(self.device)
        self._dirty.clear()

    def _require(self) -> FrameMemory:
        if self.frames is None:
            raise JBitsError("no bitstream loaded; call read() or blank() first")
        return self.frames

    # -- resource access ---------------------------------------------------------

    def get(self, row: int, col: int, field: Field) -> int:
        """Read a named CLB resource (e.g. ``SLICE[0].F``)."""
        return self._require().get_field(row, col, field)

    def set(self, row: int, col: int, field: Field, value: int) -> None:
        """Write a named CLB resource, dirtying the frames it lives in."""
        fm = self._require()
        before = fm.get_field(row, col, field)
        if before == value:
            return
        fm.set_field(row, col, field, value)
        for coord in field.coords:
            frame, _ = self.device.clb_bit_location(row, col, coord)
            self._dirty.add(frame)

    def get_pip(self, row: int, col: int, pip: int | PipDef) -> int:
        idx = pip.index if isinstance(pip, PipDef) else pip
        return self._require().get_pip(row, col, idx)

    def set_pip(self, row: int, col: int, pip: int | PipDef, value: int) -> None:
        idx = pip.index if isinstance(pip, PipDef) else pip
        fm = self._require()
        if fm.get_pip(row, col, idx) == value:
            return
        fm.set_pip(row, col, idx, value)
        frame, _ = self.device.pip_bit_location(row, col, idx)
        self._dirty.add(frame)

    def set_pip_by_name(self, row: int, col: int, src: str, dst: str, value: int = 1) -> None:
        """Turn a PIP on/off by wire names, e.g. ``("OUT0", "SE0")``."""
        self.set_pip(row, col, pip_by_wires(src, dst), value)

    def set_iob(self, site: IobSite, which: int, value: int) -> None:
        fm = self._require()
        if fm.get_iob_enable(site, which) == value:
            return
        fm.set_iob_enable(site, which, value)
        frame, _ = self.device.iob_bit_location(site, which)
        self._dirty.add(frame)

    def set_bram_word(self, site, addr: int, value: int, width: int = 16) -> None:
        """Write one data word of a block RAM's content (run-time memory
        update — the classic BRAM use of partial reconfiguration)."""
        fm = self._require()
        if fm.get_bram_word(site, addr, width) == value:
            return
        fm.set_bram_word(site, addr, value, width)
        for k in range(width):
            frame, _ = self.device.geometry.bram_bit_location(site, addr * width + k)
            self._dirty.add(frame)

    def get_bram_word(self, site, addr: int, width: int = 16) -> int:
        return self._require().get_bram_word(site, addr, width)

    def set_bram_content(self, site, words: Iterable[int], width: int = 16) -> None:
        """Fill a block RAM from a word sequence (4096 bits total max)."""
        for addr, value in enumerate(words):
            self.set_bram_word(site, addr, value, width)

    def set_gclk(self, g: int, value: int) -> None:
        fm = self._require()
        if fm.get_gclk_enable(g) == value:
            return
        fm.set_gclk_enable(g, value)
        frame, _ = self.device.gclk_bit_location(g)
        self._dirty.add(frame)

    def clear_tile(self, row: int, col: int) -> None:
        """Zero every configuration bit of one CLB tile (all 48 minors).

        Vectorized through :meth:`FrameMemory.clear_bit_range` — the
        dominant cost of a region clear, so it matters that this is one
        numpy pass instead of 864 per-bit accesses."""
        fm = self._require()
        g = self.device.geometry
        major = g.major_of_clb_col(col)
        base = g.frame_base(major)
        off = g.row_bit_offset(row)
        self._dirty.update(fm.clear_bit_range(
            base, g.columns[major].frames, off, off + BITS_PER_ROW
        ))

    # -- convenience (mirrors common JBits idioms) ------------------------------------

    def set_lut(self, row: int, col: int, slice_idx: int, letter: str, init: int) -> None:
        """Write a LUT truth table (the classic run-time-parameterisation
        use of JBits)."""
        self.set(row, col, SLICE[slice_idx].lut(letter), init)

    def get_lut(self, row: int, col: int, slice_idx: int, letter: str) -> int:
        return self.get(row, col, SLICE[slice_idx].lut(letter))

    def merge_frames(self, other: FrameMemory) -> list[int]:
        """Overwrite this configuration with ``other`` wherever they differ,
        dirtying exactly the changed frames.  Returns those frame indices.
        (How JPG lands a re-implemented module onto the base design.)"""
        fm = self._require()
        if other.device != self.device:
            raise JBitsError("cannot merge frames from a different part")
        changed = fm.diff_frames(other)
        if changed:
            fm.data[changed] = other.data[changed]
            self._dirty.update(changed)
        return changed

    # -- dirty tracking / output --------------------------------------------------------

    @property
    def dirty_frames(self) -> list[int]:
        """Frames touched since the last read()/checkpoint(), sorted."""
        return sorted(self._dirty)

    def touch_frames(self, frames: Iterable[int]) -> None:
        """Force frames into the dirty set (used for column-aligned
        partials that rewrite a whole region regardless of diffs)."""
        total = self.device.geometry.total_frames
        for f in frames:
            if not 0 <= f < total:
                raise JBitsError(f"frame {f} out of range 0..{total - 1}")
            self._dirty.add(f)

    def checkpoint(self) -> None:
        """Clear dirty tracking (after emitting a partial)."""
        self._dirty.clear()

    def write(self) -> bytes:
        """Serialize the complete configuration."""
        return full_stream(self._require())

    def write_partial(self, *, startup: bool = False, checkpoint: bool = True) -> bytes:
        """Serialize only the dirty frames as a partial bitstream."""
        if not self._dirty:
            raise JBitsError("nothing to write: no frames are dirty")
        data = partial_stream(self._require(), self.dirty_frames, startup=startup)
        if checkpoint:
            self.checkpoint()
        return data
