"""JBits-style bitstream API, JRoute run-time routing, and XHWIF."""

from ..devices.resources import SLICE
from .api import JBits
from .jroute import JRoute, RouteResult, parse_wire
from .xhwif import NullXhwif, SimulatedXhwif, Xhwif

__all__ = [
    "JBits", "JRoute", "NullXhwif", "RouteResult", "SLICE",
    "SimulatedXhwif", "Xhwif", "parse_wire",
]
