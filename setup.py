"""Shim so `pip install -e .` works on minimal/offline toolchains that
lack the `wheel` package (falls back to setuptools' legacy develop path).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
