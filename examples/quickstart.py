#!/usr/bin/env python3
"""Quickstart: the paper's Figure-1 scenario in ~60 lines.

A host processor (this script) holds a base design plus a library of
partial bitstreams, downloads the base configuration to an FPGA board, and
then swaps one region's module at run time while the rest of the device
keeps running.

Run:  python examples/quickstart.py
"""

from repro.core import render_floorplan
from repro.hwsim import Board, DesignHarness
from repro.jbits import SimulatedXhwif
from repro.utils import si_bytes
from repro.workloads import ModuleSpec, RegionPlan, make_project, slab_regions


def main() -> None:
    # ---- phase 1: partition the device and implement the base design ----
    part = "XCV50"
    rects = slab_regions(part, ["counter", "rotator"])
    plans = [
        RegionPlan(
            "counter", rects[0],
            ModuleSpec("counter", 4, "up"),
            (ModuleSpec("counter", 4, "up"), ModuleSpec("counter", 4, "down")),
        ),
        RegionPlan(
            "rotator", rects[1],
            ModuleSpec("ring", 4, "left"),
            (ModuleSpec("ring", 4, "left"), ModuleSpec("ring", 4, "right")),
        ),
    ]
    print("implementing base design and module versions (map/place/route)...")
    project = make_project("quickstart", part, plans, seed=42)
    print("  base:", project.base_flow.summary())
    print(render_floorplan(project.device, project.regions))

    # ---- phase 2 artifacts: JPG partial bitstreams -----------------------
    partials = project.generate_all_partials()
    print(f"\ncomplete bitstream: {si_bytes(project.base_bitfile.size)}")
    for (region, version), p in sorted(partials.items()):
        print(
            f"partial {region}/{version}: {si_bytes(p.size)} "
            f"({100 * p.ratio:.0f}% of full, {len(p.columns)} columns)"
        )

    # ---- run time: configure the board and swap modules ------------------
    board = Board(part)
    report = board.download(project.base_bitfile)
    print(f"\nfull download: {report.cycles} CCLK cycles = {report.seconds * 1e3:.2f} ms")
    h = DesignHarness(board, project.base_flow.design)
    host = SimulatedXhwif(board)

    counter = [f"counter_o{i}" for i in range(4)]
    ring = [f"rotator_o{i}" for i in range(4)]

    h.clock(5)
    print(f"\nafter 5 clocks: counter={h.get_word(counter)}  ring={h.get_word(ring):04b}")

    record = project.swap("counter", "down", host)
    print(
        f"swapped counter->down: {si_bytes(record.bytes)} partial in "
        f"{record.seconds * 1e6:.0f} us (device kept running)"
    )
    h.clock(3)
    print(f"after 3 more clocks: counter={h.get_word(counter)} (counting down from 5)")
    print(f"ring still rotating:  {h.get_word(ring):04b}")

    assert h.get_word(counter) == 2, "down-counter should be at 5-3=2"
    print("\nOK - partial reconfiguration behaved exactly as the paper describes.")


if __name__ == "__main__":
    main()
