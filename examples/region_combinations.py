#!/usr/bin/env python3
"""Figure 4 of the paper, live: 3 regions x (3,3,4) variants.

36 module combinations would need 36 complete bitstreams under a
conventional flow; with JPG they need 1 complete + 10 partial bitstreams.
This example builds the exact scenario, prints the storage accounting, and
then drives the device through a handful of combinations to show every one
of the 36 is reachable at run time.

Run:  python examples/region_combinations.py [part]   (default XCV100)
"""

import itertools
import sys

from repro.baselines.fullflow import enumerate_combinations
from repro.core import render_floorplan
from repro.hwsim import Board, DesignHarness
from repro.jbits import SimulatedXhwif
from repro.utils import format_table, si_bytes
from repro.workloads import figure4_plan, make_project, version_name


def main() -> None:
    part = sys.argv[1] if len(sys.argv) > 1 else "XCV100"
    plans = figure4_plan(part)
    print(f"implementing the Figure-4 scenario on {part} "
          f"(regions x variants = {[p.n_versions for p in plans]})...")
    project = make_project("fig4", part, plans, seed=5)
    print(render_floorplan(project.device, project.regions))

    partials = project.generate_all_partials()
    combos = enumerate_combinations(plans)
    full = project.base_bitfile.size
    partial_total = sum(p.size for p in partials.values())

    rows = [
        (f"{r}/{v}", si_bytes(p.size), f"{100 * p.ratio:.0f}%")
        for (r, v), p in sorted(partials.items())
    ]
    print(format_table(["partial", "size", "of full"], rows))
    print(
        f"\nconventional flow : {len(combos)} complete bitstreams "
        f"= {si_bytes(len(combos) * full)}"
    )
    print(
        f"JPG flow          : 1 complete + {len(partials)} partials "
        f"= {si_bytes(full + partial_total)}"
        f"  ({len(combos) * full / (full + partial_total):.1f}x less storage)"
    )

    # -- drive through some combinations at run time -------------------------
    board = Board(part)
    board.download(project.base_bitfile)
    h = DesignHarness(board, project.base_flow.design)
    host = SimulatedXhwif(board)

    sample = list(itertools.islice(
        itertools.product(*[[version_name(s) for s in p.variants] for p in plans]), 0, None, 7
    ))
    print(f"\nvisiting {len(sample)} of the 36 combinations at run time:")
    for combo in sample:
        swaps = []
        for plan, version in zip(plans, combo):
            if project.active[plan.name] != version:
                record = project.swap(plan.name, version, host)
                swaps.append(record.seconds)
        h.clock(4)
        r1 = h.get_word([f"r1_o{i}" for i in range(4)])
        print(
            f"  {'+'.join(combo):<28} {len(swaps)} swap(s), "
            f"{sum(swaps) * 1e6:7.0f} us reconfig, r1 state={r1:2d}"
        )
    total_reconfig = sum(r.seconds for r in project.swap_log)
    print(
        f"\n{len(project.swap_log)} swaps total, {total_reconfig * 1e3:.2f} ms "
        f"of reconfiguration — vs {len(project.swap_log)} full downloads "
        f"= {len(project.swap_log) * board.port.seconds_for(full) * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
