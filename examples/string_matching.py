#!/usr/bin/env python3
"""Run-time reconfigurable string matching (the paper's reference [5]).

Sidhu/Mei/Prasanna built string matchers whose pattern is baked into the
FPGA configuration and changed by reconfiguration.  Here a bank of
bit-serial matchers scans a data stream; swapping a region's partial
bitstream re-targets a matcher to a new pattern **without recompiling or
re-downloading the rest of the design** — the use case the paper's
introduction motivates.

Run:  python examples/string_matching.py
"""

from repro.hwsim import Board, DesignHarness
from repro.jbits import SimulatedXhwif
from repro.utils import format_table, si_bytes
from repro.workloads import ModuleSpec, RegionPlan, make_project, slab_regions

WIDTH = 8
PATTERNS = ["11010010", "00001111", "10101010", "11111111"]


def scan(harness, region: str, data: list[int]) -> list[int]:
    """Stream bits through a matcher; returns indices where it fired."""
    hits = []
    for i, bit in enumerate(data):
        harness.set(f"{region}_din", bit)
        harness.clock()
        if harness.get(f"{region}_match"):
            hits.append(i)
    return hits


def expected_hits(pattern: str, data: list[int]) -> list[int]:
    """Golden reference: registered matcher fires one cycle after the
    window matches."""
    text = "".join(map(str, data))
    return [i for i in range(len(data)) if text[: i].endswith(pattern)]


def main() -> None:
    part = "XCV50"
    rect = slab_regions(part, ["scan"], margin=4)[0]
    plan = RegionPlan(
        "scan", rect,
        ModuleSpec("matcher", WIDTH, PATTERNS[0]),
        tuple(ModuleSpec("matcher", WIDTH, p) for p in PATTERNS),
    )
    print(f"building matcher bank project on {part} (patterns: {PATTERNS})...")
    project = make_project("strings", part, [plan], seed=9)
    partials = project.generate_all_partials()

    board = Board(part)
    board.download(project.base_bitfile)
    h = DesignHarness(board, project.base_flow.design)
    host = SimulatedXhwif(board)

    # a data stream containing every pattern once
    import random

    rng = random.Random(7)
    data: list[int] = []
    for p in PATTERNS:
        data += [rng.randint(0, 1) for _ in range(12)] + [int(ch) for ch in p]
    data += [rng.randint(0, 1) for _ in range(8)]

    rows = []
    for pattern in PATTERNS:
        record = project.swap("scan", pattern, host)
        # flush the shift register between patterns
        for _ in range(WIDTH):
            h.set("scan_din", 0)
            h.clock()
        hits = scan(h, "scan", data)
        want = expected_hits(pattern, data)
        rows.append(
            (pattern, si_bytes(record.bytes), f"{record.seconds * 1e6:.0f} us",
             len(hits), "OK" if hits == want else "MISMATCH")
        )
        assert hits == want, (pattern, hits, want)

    print(format_table(
        ["pattern", "partial size", "reconfig time", "hits", "check"], rows
    ))
    total = sum(p.size for p in partials.values())
    print(
        f"\n4 patterns from {si_bytes(total)} of partials vs "
        f"{si_bytes(4 * project.base_bitfile.size)} of full bitstreams "
        f"({4 * project.base_bitfile.size / total:.1f}x saved)"
    )


if __name__ == "__main__":
    main()
