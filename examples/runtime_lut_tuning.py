#!/usr/bin/env python3
"""Classic JBits-style run-time parameterisation: poke a LUT, ship 1 frame.

Below the JPG flow sits the raw JBits API (paper §2.2).  Its classic trick
is run-time parameterisable cores: a circuit whose constants live in LUT
truth tables, rewritten directly in the bitstream — no CAD tools involved.
Here a placed-and-routed 4-bit comparator has its threshold changed at run
time by rewriting one LUT, producing a partial bitstream of a few dozen
frames in microseconds.

Run:  python examples/runtime_lut_tuning.py
"""

from repro.bitstream.bitgen import bitgen
from repro.flow import run_flow
from repro.hwsim import Board, DesignHarness
from repro.jbits import JBits
from repro.netlist import NetlistBuilder
from repro.utils import si_bytes
from repro.xdl import physical_init


def build_threshold_design(threshold: int):
    """y = 1 when the 4-bit input exceeds `threshold` (a single LUT4)."""
    b = NetlistBuilder("cmp")
    ins = [b.input(f"i{k}") for k in range(4)]
    init = 0
    for value in range(16):
        if value > threshold:
            init |= 1 << value
    b.output("y", b.lut(init, *ins, name="u1/cmp_lut"))
    return b.finish()


def threshold_init(threshold: int, pin_map) -> int:
    from repro.netlist.library import expand_init

    init = sum(1 << v for v in range(16) if v > threshold)
    return expand_init(init, 4, 4, pin_map)


def main() -> None:
    part = "XCV50"
    print("implementing the threshold comparator (threshold=7)...")
    res = run_flow(build_threshold_design(7), part, seed=3)
    bit = bitgen(res.design)

    board = Board(part)
    board.download(bit)
    h = DesignHarness(board, res.design)

    def measure() -> list[int]:
        fired = []
        for v in range(16):
            h.set_many({f"i{k}": (v >> k) & 1 for k in range(4)})
            if h.get("y"):
                fired.append(v)
        return fired

    print(f"  comparator fires for: {measure()}")

    # find where the router put the LUT and with which pin permutation
    comp = res.design.slices["u1/cmp_lut"]
    bel = next(b for b in comp.bels.values() if b.lut_cell == "u1/cmp_lut")
    r, c, s = comp.site
    print(f"  LUT lives at CLB_R{r + 1}C{c + 1}.S{s} bel {bel.letter}, pin map {bel.pin_map}")

    jb = JBits(part)
    jb.read(board.readback())
    assert jb.get_lut(r, c, s, bel.letter) == physical_init(bel)

    for new_threshold in (3, 12):
        jb.set_lut(r, c, s, bel.letter, threshold_init(new_threshold, bel.pin_map))
        partial = jb.write_partial()
        report = board.download(partial)
        print(
            f"  re-tuned threshold to {new_threshold}: {si_bytes(report.bytes)} partial, "
            f"{report.frames_written} frames, {report.seconds * 1e6:.1f} us"
        )
        got = measure()
        assert got == list(range(new_threshold + 1, 16)), got
        print(f"    comparator now fires for: {got}")

    print("OK - LUT-level run-time parameterisation works end to end.")


if __name__ == "__main__":
    main()
