#!/usr/bin/env python3
"""Bitstream-level circuit patching with JRoute (paper §2.2's ecosystem).

JBits' companion JRoute routed nets at run time, directly in the
bitstream.  This example builds and downloads a design, then — without
touching the CAD flow — patches the live configuration:

1. place a brand-new LUT (an AND of two existing signals) in an empty
   tile by writing its truth table,
2. route its inputs from the running design's wires and its output to a
   spare pad, using only free routing resources,
3. ship the whole patch as one small partial bitstream and watch the new
   logic compute.

Run:  python examples/jroute_patch.py
"""

from repro.bitstream.bitgen import bitgen
from repro.devices.geometry import IobSite, Side
from repro.flow import run_flow
from repro.hwsim import Board, DesignHarness
from repro.jbits import JBits, JRoute
from repro.utils import si_bytes
from repro.workloads import ModuleSpec, build_module_netlist


def main() -> None:
    part = "XCV50"
    print("implementing a 4-bit counter and downloading it...")
    netlist = build_module_netlist("dut", "m", ModuleSpec("counter", 4, "up"))
    flow = run_flow(netlist, part, seed=13)
    board = Board(part)
    board.download(bitgen(flow.design))
    h = DesignHarness(board, flow.design)

    # locate the running counter's bit-1 and bit-2 flip-flop output wires
    def q_wire(bit: int) -> str:
        net = flow.design.nets[f"m/q{bit}_reg__q"]
        comp = flow.design.slices[net.source.comp]
        r, c, s = comp.site
        return f"R{r + 1}C{c + 1}.S{s}_{net.source.pin}"

    src1, src2 = q_wire(1), q_wire(2)
    print(f"tapping live wires {src1} (q1) and {src2} (q2)")

    # pick an empty tile and a free pad for the patch
    jb = JBits(part)
    jb.read(board.readback())
    jr = JRoute(jb)
    used_tiles = {(c.site[0], c.site[1]) for c in flow.design.slices.values()}
    patch_tile = next(
        (r, c)
        for r in range(4, 12)
        for c in range(4, 20)
        if (r, c) not in used_tiles
    )
    pr, pc = patch_tile
    pad = IobSite(Side.BOTTOM, pc, 0)
    print(f"patch LUT at CLB_R{pr + 1}C{pc + 1}.S0, output pad {pad.name}")

    # 1. the new logic: F-LUT computing F1 & F2 (address bits 0 and 1)
    init = sum(1 << a for a in range(16) if (a & 1) and (a & 2))
    jb.set_lut(pr, pc, 0, "F", init)
    jb.set_iob(pad, 1, 1)  # enable the output pad

    # 2. route: q1 -> F1, q2 -> F2, LUT out -> pad
    r1 = jr.route(src1, f"R{pr + 1}C{pc + 1}.S0_F1")
    r2 = jr.route(src2, f"R{pr + 1}C{pc + 1}.S0_F2")
    iw = board.device.geometry.io_wire_index(pad)
    tr, tc = board.device.geometry.iob_tile(pad)
    r3 = jr.route(f"R{pr + 1}C{pc + 1}.S0_X", f"R{tr + 1}C{tc + 1}.IO_OUT{iw}")
    print(f"routed 3 nets with {r1.hops + r2.hops + r3.hops} PIPs")

    # 3. ship the patch
    patch = jb.write_partial()
    rep = board.download(patch)
    print(f"patch partial: {si_bytes(rep.bytes)}, {rep.frames_written} frames")

    # verify: the pad must read q1 & q2 as the counter runs
    ok = True
    for _ in range(12):
        value = h.get_word([f"m_o{i}" for i in range(4)])
        want = int(bool(value & 2) and bool(value & 4))
        got = board.get_pad(pad.name)
        ok &= got == want
        print(f"  counter={value:2d}  q1&q2 expect={want} pad={got}")
        h.clock()
    assert ok
    print("OK - live patch computes q1 & q2 without re-running the flow.")


if __name__ == "__main__":
    main()
