#!/usr/bin/env python3
"""Verilog source to reconfigurable hardware, start to finish.

The paper's flow begins at "VHDL/Verilog/Schematic".  This example writes
two Verilog modules with the same interface — a PWM generator and a parity
blinker — elaborates them, and runs the full two-phase JPG methodology:
the PWM becomes the base design, the blinker a swap-in version, and the
device switches between them at run time.

Run:  python examples/verilog_flow.py
"""

from repro.core.project import JpgProject
from repro.flow.floorplan import RegionRect
from repro.hwsim import Board, DesignHarness
from repro.jbits import SimulatedXhwif
from repro.netlist.verilog import elaborate
from repro.utils import si_bytes

PWM = """
// out is high for `duty` of every 2^WIDTH cycles (registered comparator:
// the borrow bit of duty - phase says whether phase < duty)
module led #(parameter WIDTH = 4) (
    input clk,
    input [WIDTH-1:0] duty,
    output reg out
);
    reg [WIDTH-1:0] phase;
    wire [WIDTH:0] diff;
    assign diff = duty - phase;          // bit WIDTH set iff duty < phase
    always @(posedge clk) begin
        phase <= phase + 1;
        out <= ~diff[WIDTH] & (duty != phase);   // phase < duty
    end
endmodule
"""

BLINK = """
// same interface, different personality: a parity-pattern blinker that
// uses `duty` as a tap mask
module led #(parameter WIDTH = 4) (
    input clk,
    input [WIDTH-1:0] duty,
    output reg out
);
    reg [WIDTH-1:0] phase;
    always @(posedge clk) begin
        phase <= phase + 1;
        out <= ^(phase & duty);
    end
endmodule
"""


def led_module_netlist(src: str, name: str):
    """Elaborate, then re-home the logic cells under the ``led/`` region
    prefix so the project's area group covers them."""
    em = elaborate(src)
    nl = em.netlist
    nl.name = name
    renames = {
        c: f"led/{c}"
        for c in list(nl.cells)
        if not c.endswith("__ibuf") and not c.endswith("__obuf")
    }
    for old, new in renames.items():
        cell = nl.cells.pop(old)
        cell.name = new
        nl.cells[new] = cell
    for net in nl.nets.values():
        if net.driver and net.driver[0] in renames:
            net.driver = (renames[net.driver[0]], net.driver[1])
        net.sinks = [(renames.get(c, c), p) for c, p in net.sinks]
    return nl, em


def main() -> None:
    part = "XCV50"
    project = JpgProject("verilog_demo", part)
    project.add_region("led", RegionRect(0, 4, 15, 19))

    print("elaborating Verilog and implementing the base design (PWM)...")
    base_nl, em = led_module_netlist(PWM, "pwm")
    project.implement_base(base_nl, seed=17)
    print(" ", project.base_flow.summary())

    print("implementing the swap-in version (parity blinker)...")
    blink_nl, _ = led_module_netlist(BLINK, "blink")
    project.add_version("led", "blink", blink_nl, seed=17)
    partial = project.generate_partial("led", "blink")
    print(f"  partial: {si_bytes(partial.size)} ({100 * partial.ratio:.0f}% of full)")

    board = Board(part)
    board.download(project.base_bitfile)
    h = DesignHarness(board, project.base_flow.design)
    duty_bits = em.port_bits("duty")

    def measure_duty(cycles: int = 32) -> float:
        high = 0
        for _ in range(cycles):
            h.clock()
            high += h.get("out")
        return high / cycles

    for duty in (4, 12):
        h.set_word(duty_bits, duty)
        frac = measure_duty()
        print(f"PWM duty={duty:>2}/16 -> measured high fraction {frac:.2f}")
        assert abs(frac - duty / 16) < 0.10, frac

    project.swap("led", "blink", SimulatedXhwif(board))
    h.set_word(duty_bits, 0b0101)
    pattern = []
    for _ in range(8):
        h.clock()
        pattern.append(h.get("out"))
    print(f"after swap, blinker pattern (mask 0101): {pattern}")
    assert any(pattern) and not all(pattern)
    print("OK - two Verilog designs, one region, swapped live.")


if __name__ == "__main__":
    main()
