#!/usr/bin/env python3
"""The complete JPG CAD tool flow (paper Figure 2), file by file.

This example performs every box in the paper's flow diagram with real
artifacts on disk: HDL-level construction, constraints (.ucf), mapping,
floorplanned placement and routing, the NCD database (.ncd), its XDL dump
(.xdl), bitgen (.bit), and finally the JPG step that turns the phase-2
module's XDL+UCF into a partial bitstream.

Run:  python examples/tool_flow.py [workdir]
"""

import sys
from pathlib import Path

from repro.bitstream.bitgen import bitgen
from repro.core import Jpg, render_column_footprint
from repro.devices import get_device
from repro.flow import run_flow
from repro.flow.ncd import NcdDesign
from repro.ucf import load_ucf, write_ucf, UcfFile
from repro.utils import si_bytes
from repro.workloads import ModuleSpec, RegionPlan, build_base_netlist, build_module_netlist, slab_regions
from repro.xdl import load_xdl, save_xdl


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("build/tool_flow")
    workdir.mkdir(parents=True, exist_ok=True)
    part = "XCV100"

    # ---- Phase 1: base design --------------------------------------------
    print("== phase 1: base design ==")
    rect = slab_regions(part, ["filter"], margin=3)[0]
    plan = RegionPlan("filter", rect, ModuleSpec("matcher", 6, "101101"))
    base_netlist = build_base_netlist("base", [plan])

    # initial constraint definitions -> floorplanning -> UCF file
    from repro.core.project import JpgProject

    project = JpgProject("toolflow", part)
    project.add_region("filter", rect)
    constraints = project.constraints()
    ucf_path = workdir / "base.ucf"
    ucf_path.write_text(write_ucf(UcfFile(constraints)))
    print(f"  wrote {ucf_path}")

    # mapping, placement and routing (the Foundation step)
    base = run_flow(base_netlist, part, constraints, seed=1)
    print(f"  {base.summary()}")

    # NCD database + complete bitstream (bitgen)
    ncd_path = workdir / "base.ncd"
    base.design.save(str(ncd_path))
    base_bit = bitgen(base.design)
    bit_path = workdir / "base.bit"
    base_bit.save(str(bit_path))
    print(f"  wrote {ncd_path} and {bit_path} ({si_bytes(base_bit.size)})")

    # ---- Phase 2: a new version of the sub-module -------------------------
    print("\n== phase 2: re-implement the sub-module (new pattern) ==")
    module_netlist = build_module_netlist("filter_v2", "filter", ModuleSpec("matcher", 6, "111000"))
    module = run_flow(
        module_netlist, part, project.constraints("filter"),
        guide=base.design, seed=1,
    )
    print(f"  {module.summary()}")

    # create XDL from the NCD (the `xdl` utility step)
    module_ncd = workdir / "filter_v2.ncd"
    module.design.save(str(module_ncd))
    xdl_path = workdir / "filter_v2.xdl"
    save_xdl(NcdDesign.load(str(module_ncd)), str(xdl_path))
    print(f"  wrote {module_ncd} and {xdl_path}")

    # ---- JPG: XDL + UCF -> partial bitstream -------------------------------
    print("\n== JPG ==")
    jpg = Jpg(part, base_bit, base_design=base.design)
    result = jpg.make_partial(
        load_xdl(str(xdl_path)),
        ucf=load_ucf(str(ucf_path)),
    )
    partial_path = workdir / "filter_v2_partial.bit"
    result.save(str(partial_path), part)
    dev = get_device(part)
    print(f"  {render_column_footprint(dev, result.columns, len(result.frames))}")
    print(
        f"  wrote {partial_path}: {si_bytes(result.size)} "
        f"= {100 * result.ratio:.1f}% of the complete bitstream"
    )

    # ---- prove it works: download and stream data through the matcher ------
    print("\n== verification on the simulated board ==")
    from repro.hwsim import Board, DesignHarness

    board = Board(part)
    board.download(base_bit)
    board.download(result.data)
    h = DesignHarness(board, module.design)
    stream = [1, 1, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0]
    hits = []
    for bit in stream:
        h.set("filter_din", bit)
        h.clock()
        hits.append(h.get("filter_match"))
    print(f"  input bits : {stream}")
    print(f"  match flag : {hits}")
    assert 1 in hits, "the new pattern 111000 must be detected"
    print("OK - the partially-reconfigured matcher detects its new pattern.")


if __name__ == "__main__":
    main()
