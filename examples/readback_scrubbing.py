#!/usr/bin/env python3
"""Readback verify and SEU scrubbing — the reliability side of JBits.

Configuration readback (CMD=RCFG + FDRO) streams frames back out of the
device.  Era-typical uses, both shown here on a live design:

1. **readback verify** — prove the device holds exactly the intended
   configuration after a download;
2. **scrubbing** — detect single-event upsets (radiation flipping SRAM
   configuration bits) by comparing readback against the golden frames,
   then repair by re-writing only the corrupted frames as a partial
   bitstream, without stopping the design.

Run:  python examples/readback_scrubbing.py
"""

import random

from repro.bitstream.assembler import partial_stream
from repro.bitstream.bitgen import bitgen, generate_frames
from repro.flow import run_flow
from repro.hwsim import Board, DesignHarness
from repro.utils import si_bytes
from repro.workloads import ModuleSpec, build_module_netlist


def main() -> None:
    part = "XCV50"
    print("implementing an 8-bit counter...")
    netlist = build_module_netlist("dut", "m", ModuleSpec("counter", 8, "up"))
    flow = run_flow(netlist, part, seed=21)
    golden = generate_frames(flow.design)

    board = Board(part)
    board.download(bitgen(flow.design))
    h = DesignHarness(board, flow.design)
    outs = [f"m_o{i}" for i in range(8)]

    # -- 1. readback verify after configuration ---------------------------
    data, report = board.readback_frames(0, board.device.geometry.total_frames)
    mismatches = board.verify(golden)
    print(
        f"readback: {report.frames} frames, {si_bytes(report.data_bytes)} in "
        f"{report.seconds * 1e3:.2f} ms -> {len(mismatches)} mismatching frames"
    )
    assert mismatches == []

    h.clock(42)
    print(f"counter running, value = {h.get_word(outs)}")

    # -- 2. a radiation event flips configuration bits ----------------------
    rng = random.Random(4)
    upset_frames = []
    for _ in range(3):
        frame = rng.randrange(board.device.geometry.total_frames)
        bit = rng.randrange(board.device.geometry.frame_bits)
        board.frames.set_bit(frame, bit, 1 - board.frames.get_bit(frame, bit))
        upset_frames.append(frame)
    board._model = None  # the fabric now follows the corrupted SRAM
    print(f"\ninjected SEUs into frames {sorted(upset_frames)}")

    # -- 3. scrub: detect via readback, repair via partial bitstream ---------
    detected = board.verify(golden)
    print(f"scrubber detected corrupted frames: {detected}")
    assert set(detected) == set(upset_frames)

    repair = partial_stream(golden, detected)
    rep = board.download(repair)
    print(
        f"repair partial: {si_bytes(rep.bytes)}, {rep.frames_written} frames, "
        f"{rep.seconds * 1e6:.0f} us"
    )
    assert board.verify(golden) == []

    h.clock(1)
    print(
        f"counter alive after scrub, value = {h.get_word(outs)} "
        f"(flip-flop state restarted: this simulation rebuilds the fabric "
        f"model after direct SRAM corruption)"
    )
    print("OK - detect-and-repair scrubbing loop closed.")


if __name__ == "__main__":
    main()
