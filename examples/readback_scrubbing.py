#!/usr/bin/env python3
"""Fault-tolerant reconfiguration with the runtime layer.

The detect-and-repair loop this example once spelled out by hand now
lives in :mod:`repro.runtime`:

1. a :class:`FaultPlan` plugs into the simulated board and injects a
   deterministic campaign of faults — transient send errors plus SEUs
   (radiation flipping configuration-SRAM bits between port operations);
2. a :class:`ReconfigSession` downloads with bounded retries, validating
   each transfer against the port's CRC and frames-written report;
3. a :class:`Scrubber` readback-verifies against the golden frames and
   repairs corrupted frames with minimal partial bitstreams, escalating
   to a full reconfiguration only if the loop does not converge.

Everything is seeded and modeled (no wall clock), so the run below is
byte-deterministic.  Run:  python examples/readback_scrubbing.py
"""

from repro.bitstream.bitgen import bitgen, generate_frames
from repro.flow import run_flow
from repro.hwsim import Board, DesignHarness
from repro.jbits import SimulatedXhwif
from repro.obs import Metrics, use_metrics
from repro.runtime import (
    FaultPlan,
    ReconfigSession,
    RetryPolicy,
    ScrubPolicy,
    Scrubber,
)
from repro.workloads import ModuleSpec, build_module_netlist


def main() -> None:
    part = "XCV50"
    print("implementing an 8-bit counter...")
    netlist = build_module_netlist("dut", "m", ModuleSpec("counter", 8, "up"))
    flow = run_flow(netlist, part, seed=21)
    golden = generate_frames(flow.design)

    # a hostile environment: two transient send errors, then four SEUs
    # landing in pairs between port operations
    plan = FaultPlan(4, send_errors=2, send_error_every=2,
                     seu_flips=4, seu_per_window=2)
    board = Board(part, fault_plan=plan)
    metrics = Metrics()

    with use_metrics(metrics):
        # -- 1. configure through the retrying session -----------------------
        session = ReconfigSession(
            SimulatedXhwif(board), policy=RetryPolicy(max_attempts=4)
        )
        outcome = session.send(
            bitgen(flow.design).config_bytes, label="base",
            expect_frames=board.device.geometry.total_frames,
        )
        assert outcome.ok
        print(
            f"configured in {len(outcome.attempts)} attempt(s) "
            f"({outcome.retries} retried), "
            f"{outcome.seconds * 1e3:.2f} ms modeled transfer time"
        )

        h = DesignHarness(board, flow.design)
        outs = [f"m_o{i}" for i in range(8)]
        h.clock(42)
        print(f"counter running, value = {h.get_word(outs)}")

        # -- 2+3. scrub: readback-verify, repair, repeat ---------------------
        scrubber = Scrubber(session, golden, policy=ScrubPolicy(max_rounds=5))
        report = scrubber.run()

    for rnd in report.rounds:
        print(
            f"scrub round {rnd.index}: detected frames {rnd.detected}, "
            f"repaired {rnd.send.frames_written} with one partial "
            f"({rnd.send.seconds * 1e6:.0f} us)"
        )
    assert report.verified and not report.escalated
    seus = plan.seu_frames
    print(f"device verified against golden; SEUs had hit frames {seus}")
    assert report.frames_scrubbed == len(seus)

    h.clock(1)
    print(f"counter alive after scrubbing, value = {h.get_word(outs)}")
    print(
        f"runtime counters: retries={metrics.counter('runtime.retries')} "
        f"verifies={metrics.counter('runtime.verifies')} "
        f"frames_scrubbed={metrics.counter('runtime.frames_scrubbed')} "
        f"escalations={metrics.counter('runtime.escalations')}"
    )
    print("OK - detect-and-repair scrubbing loop closed.")


if __name__ == "__main__":
    main()
